// Deterministic, splittable pseudo-random number generation.
//
// Experiments must be reproducible regardless of thread scheduling, so every
// sweep cell derives its own Rng from (base seed, cell index, repetition)
// through derive_seed(). The generator is xoshiro256** seeded via SplitMix64.
#pragma once

#include <cstdint>
#include <limits>

#include "hdlts/util/error.hpp"

namespace hdlts::util {

/// SplitMix64 step; used for seeding and for seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes additional words into a seed; order-sensitive, collision-resistant
/// enough for experiment-cell derivation.
constexpr std::uint64_t derive_seed(std::uint64_t base) { return base; }

template <typename... Rest>
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t next,
                                    Rest... rest) {
  std::uint64_t s = base ^ (0x9e3779b97f4a7c15ULL + (base << 6) + (base >> 2));
  s ^= splitmix64(next);
  return derive_seed(s, static_cast<std::uint64_t>(rest)...);
}

/// xoshiro256** — fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) {
    // Seed the full 256-bit state from SplitMix64 so that similar seeds do
    // not yield correlated streams.
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) {
    HDLTS_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    HDLTS_EXPECTS(lo <= hi);
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + static_cast<std::int64_t>(draw % range);
  }

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Forks an independent generator; deterministic given this Rng's state.
  Rng split() { return Rng(derive_seed((*this)(), (*this)())); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace hdlts::util
