#include "hdlts/util/json_parse.hpp"

#include <cstdlib>
#include <utility>

namespace hdlts::util {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw InvalidArgument("JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) {
    throw InvalidArgument("JSON value is not a number");
  }
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    throw InvalidArgument("JSON value is not a string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) {
    throw InvalidArgument("JSON value is not an array");
  }
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) {
    throw InvalidArgument("JSON value is not an object");
  }
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, const JsonParseOptions& options)
      : text_(text), options_(options) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what, pos_);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > options_.max_depth) fail("nesting too deep");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case '"':
        return JsonValue::make_string(parse_string());
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      JsonValue value = parse_value(depth + 1);
      if (!members.emplace(std::move(key), std::move(value)).second) {
        fail("duplicate object key");
      }
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  static int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("truncated \\u escape");
      const int d = hex_digit(peek());
      if (d < 0) fail("bad \\u escape");
      code = code * 16 + static_cast<unsigned>(d);
      ++pos_;
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("truncated escape");
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require a low surrogate pair.
            if (eof() || peek() != '\\') fail("unpaired surrogate");
            ++pos_;
            if (eof() || peek() != 'u') fail("unpaired surrogate");
            ++pos_;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          pos_ -= 1;
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof()) fail("bad number");
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    } else {
      fail("bad number");
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("bad number fraction");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("bad number exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  JsonParseOptions options_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text, JsonParseOptions options) {
  return Parser(text, options).run();
}

}  // namespace hdlts::util
