#include "hdlts/util/thread_pool.hpp"

#include <algorithm>

namespace hdlts::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(pool, count,
                       [&body](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) body(i);
                       });
}

void parallel_for_chunked(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, pool.size() * 4);
  const std::size_t chunk = (count + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, count);
    pool.submit([begin, end, &body] { body(begin, end); });
  }
  pool.wait_idle();
}

}  // namespace hdlts::util
