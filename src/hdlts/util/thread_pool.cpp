#include "hdlts/util/thread_pool.hpp"

#include <algorithm>

namespace hdlts::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::run_team(std::size_t count, std::size_t chunk,
                          FunctionRef<void(std::size_t, std::size_t)> body) {
  if (count == 0) return;
  if (chunk == 0) chunk = 1;
  {
    std::unique_lock lock(mutex_);
    // Serialize leaders and wait out stale joiners from the previous team:
    // the broadcast slot must not be overwritten while any worker could
    // still read it.
    team_exit_.wait(lock,
                    [this] { return !team_leader_ && team_active_ == 0; });
    team_leader_ = true;
    team_body_ = &body;
    team_count_ = count;
    team_chunk_ = chunk;
    team_next_.store(0, std::memory_order_relaxed);
    team_done_.store(0, std::memory_order_relaxed);
    ++team_epoch_;
  }
  work_available_.notify_all();
  team_claim_chunks();  // the caller is a team member too
  {
    std::unique_lock lock(mutex_);
    // All indices processed AND no worker still inside the claim loop (a
    // worker past its last fetch_add may otherwise still be running body).
    team_exit_.wait(lock, [this] {
      return team_done_.load(std::memory_order_acquire) == team_count_ &&
             team_active_ == 0;
    });
    team_leader_ = false;
  }
  team_exit_.notify_all();
}

void ThreadPool::team_claim_chunks() {
  for (;;) {
    const std::size_t begin =
        team_next_.fetch_add(team_chunk_, std::memory_order_relaxed);
    if (begin >= team_count_) return;  // never dereferences a stale body
    const std::size_t end = std::min(begin + team_chunk_, team_count_);
    (*team_body_)(begin, end);
    if (team_done_.fetch_add(end - begin, std::memory_order_acq_rel) +
            (end - begin) ==
        team_count_) {
      { std::lock_guard lock(mutex_); }
      team_exit_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::function<void()> task;
    bool team_member = false;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [&] {
        return stopping_ || !queue_.empty() || team_epoch_ != seen_epoch;
      });
      if (team_epoch_ != seen_epoch) {
        // Join the announced team first — its leader is blocked on us.
        // Joining a team that already finished is harmless: the claim loop
        // sees an exhausted cursor and exits without touching the body.
        seen_epoch = team_epoch_;
        ++team_active_;
        team_member = true;
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop();
      } else {
        return;  // stopping_ and drained
      }
    }
    if (team_member) {
      team_claim_chunks();
      {
        std::lock_guard lock(mutex_);
        --team_active_;
      }
      team_exit_.notify_all();
      continue;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(pool, count,
                       [&body](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) body(i);
                       });
}

void parallel_for_chunked(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, pool.size() * 4);
  const std::size_t chunk = (count + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, count);
    pool.submit([begin, end, &body] { body(begin, end); });
  }
  pool.wait_idle();
}

}  // namespace hdlts::util
