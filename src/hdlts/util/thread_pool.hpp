// A small fixed-size thread pool with a parallel_for helper and an
// allocation-free cooperative "team" primitive.
//
// The experiment harness runs thousands of independent (workload, scheduler,
// repetition) cells; each cell derives its RNG from its index, so results are
// identical whether the pool has 1 or 64 workers.
//
// run_team exists for the intra-problem parallel EFT refresh in
// core/hdlts.cpp: submit() converts the callable to a std::function (heap)
// and pushes a deque node, which would break the compiled path's
// zero-steady-state-allocation contract. A team instead broadcasts one
// non-owning FunctionRef to every idle worker; chunks are claimed from an
// atomic cursor and the caller participates, so the call allocates nothing
// and completes even when every worker is busy with queued tasks
// (docs/CONCURRENCY.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "hdlts/util/function_ref.hpp"

namespace hdlts::util {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; tasks must not throw (std::terminate otherwise).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

  /// Runs body(begin, end) cooperatively over disjoint chunks covering
  /// [0, count), on the calling thread plus every worker that is idle when
  /// the team is announced, and blocks until all `count` indices are done.
  /// Zero heap allocations; `body` must not throw and must be safe to call
  /// concurrently on disjoint ranges. Must be called from outside the pool
  /// (never from a worker); concurrent callers are serialized.
  void run_team(std::size_t count, std::size_t chunk,
                FunctionRef<void(std::size_t, std::size_t)> body);

 private:
  void worker_loop();
  /// Claims and runs team chunks until the cursor is exhausted.
  void team_claim_chunks();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::condition_variable team_exit_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;

  // Team broadcast slot. The plain fields are written by the leader under
  // mutex_ (together with the epoch bump) and read by workers only after
  // observing the new epoch under the same mutex; the atomics coordinate
  // chunk claiming and completion without the lock.
  const FunctionRef<void(std::size_t, std::size_t)>* team_body_ = nullptr;
  std::size_t team_count_ = 0;
  std::size_t team_chunk_ = 1;
  std::uint64_t team_epoch_ = 0;   // guarded by mutex_
  std::size_t team_active_ = 0;    // workers inside a claim loop; mutex_
  bool team_leader_ = false;       // a run_team call is in progress; mutex_
  std::atomic<std::size_t> team_next_{0};
  std::atomic<std::size_t> team_done_{0};
};

/// Runs body(i) for i in [0, count) across the pool, blocking until done.
/// Iterations are distributed in contiguous chunks to limit queue churn.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Chunked variant: body(begin, end) is invoked once per contiguous chunk
/// covering [0, count). Callers can hoist per-chunk setup (e.g. constructing
/// scheduler instances once per worker chunk instead of once per index).
void parallel_for_chunked(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace hdlts::util
