// A small fixed-size thread pool with a parallel_for helper.
//
// The experiment harness runs thousands of independent (workload, scheduler,
// repetition) cells; each cell derives its RNG from its index, so results are
// identical whether the pool has 1 or 64 workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hdlts::util {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; tasks must not throw (std::terminate otherwise).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across the pool, blocking until done.
/// Iterations are distributed in contiguous chunks to limit queue churn.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Chunked variant: body(begin, end) is invoked once per contiguous chunk
/// covering [0, count). Callers can hoist per-chunk setup (e.g. constructing
/// scheduler instances once per worker chunk instead of once per index).
void parallel_for_chunked(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace hdlts::util
