// Minimal JSON token helpers shared by every hand-rolled JSON writer in the
// library (sim/trace.cpp, obs/export.cpp, obs/metrics.cpp) so escaping and
// number formatting follow one policy instead of N copies.
//
// Numbers: JSON has no NaN/Infinity literals. Non-finite doubles are emitted
// as `null` — the convention both `python3 -m json.tool` and Chrome's trace
// viewer accept — so a deadlocked replay (infinite actual times) still
// serializes to valid JSON. Finite values use %.17g, which round-trips every
// double exactly.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace hdlts::util {

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view s);

/// Formats a double as a single valid JSON token (`null` when non-finite).
std::string json_number(double v);

/// json_number straight into a stream (no allocation for finite values).
void write_json_number(std::ostream& os, double v);

}  // namespace hdlts::util
