// A non-owning, non-allocating callable reference (function pointer + caller
// context), for hot paths that must not touch the heap the way a
// std::function conversion does. The referenced callable must outlive every
// invocation — FunctionRef is a parameter type, never a stored member.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace hdlts::util {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        fn_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return fn_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*fn_)(void*, Args...);
};

}  // namespace hdlts::util
