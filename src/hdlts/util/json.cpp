#include "hdlts/util/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace hdlts::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// %.17g round-trips every finite double; snprintf never uses more than ~26
/// characters for one.
int format_number(char (&buf)[32], double v) {
  if (!std::isfinite(v)) {
    return std::snprintf(buf, sizeof buf, "null");
  }
  return std::snprintf(buf, sizeof buf, "%.17g", v);
}

}  // namespace

std::string json_number(double v) {
  char buf[32];
  const int n = format_number(buf, v);
  return std::string(buf, static_cast<std::size_t>(n));
}

void write_json_number(std::ostream& os, double v) {
  char buf[32];
  const int n = format_number(buf, v);
  os.write(buf, n);
}

}  // namespace hdlts::util
