#include "hdlts/sim/compiled.hpp"

#include <algorithm>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/util/stats.hpp"

namespace hdlts::sim {

CompiledProblem::CompiledProblem(const graph::TaskGraph& g,
                                 const CostTable& costs,
                                 const platform::Platform& platform)
    : num_tasks_(g.num_tasks()), num_procs_(platform.num_procs()) {
  if (g.num_tasks() != costs.num_tasks()) {
    throw InvalidArgument("cost table has " +
                          std::to_string(costs.num_tasks()) +
                          " tasks but graph has " +
                          std::to_string(g.num_tasks()));
  }
  if (platform.num_procs() != costs.num_procs()) {
    throw InvalidArgument("cost table has " +
                          std::to_string(costs.num_procs()) +
                          " processors but platform has " +
                          std::to_string(platform.num_procs()));
  }

  // Throws on cyclic graphs; doubles as the acyclicity validation.
  topo_ = graph::topological_order(g);
  levels_ = graph::precedence_levels(g);
  entries_ = g.entry_tasks();
  exits_ = g.exit_tasks();

  // CSR adjacency: one pass for offsets, one to pack the flat arrays, with
  // the TaskGraph's per-vertex adjacency order preserved verbatim.
  child_off_.resize(num_tasks_ + 1, 0);
  parent_off_.resize(num_tasks_ + 1, 0);
  for (graph::TaskId v = 0; v < num_tasks_; ++v) {
    child_off_[v + 1] = child_off_[v] + g.children(v).size();
    parent_off_[v + 1] = parent_off_[v] + g.parents(v).size();
  }
  child_adj_.reserve(child_off_[num_tasks_]);
  parent_adj_.reserve(parent_off_[num_tasks_]);
  for (graph::TaskId v = 0; v < num_tasks_; ++v) {
    const auto children = g.children(v);
    child_adj_.insert(child_adj_.end(), children.begin(), children.end());
    const auto parents = g.parents(v);
    parent_adj_.insert(parent_adj_.end(), parents.begin(), parents.end());
  }

  // W: verbatim row-major copy; per-task summaries use the same util::stats
  // calls CostTable's accessors do, over the same full rows (dead processors
  // included), so every cached double equals the legacy recompute bitwise.
  w_.reserve(num_tasks_ * num_procs_);
  mean_cost_.resize(num_tasks_);
  min_cost_.resize(num_tasks_);
  stddev_cost_.resize(num_tasks_);
  free_task_.resize(num_tasks_);
  for (graph::TaskId v = 0; v < num_tasks_; ++v) {
    const auto row = costs.row(v);
    w_.insert(w_.end(), row.begin(), row.end());
    mean_cost_[v] = util::mean(row);
    min_cost_[v] = *std::min_element(row.begin(), row.end());
    stddev_cost_[v] = util::stddev_sample(row);
    free_task_[v] =
        std::all_of(row.begin(), row.end(), [](double c) { return c <= 0.0; })
            ? 1
            : 0;
  }

  // Energy rows mirror the cost rows: dynamic energy is the verbatim
  // W(v, p) * (busy - idle) product, static power the idle draw, both cached
  // so scheduler hot loops never touch the platform's checked accessors.
  static_power_.resize(num_procs_);
  busy_power_.resize(num_procs_);
  for (platform::ProcId p = 0; p < num_procs_; ++p) {
    static_power_[p] = platform.idle_power(p);
    busy_power_[p] = platform.busy_power(p);
  }
  dyn_energy_.resize(num_tasks_ * num_procs_);
  for (graph::TaskId v = 0; v < num_tasks_; ++v) {
    for (platform::ProcId p = 0; p < num_procs_; ++p) {
      const std::size_t at = static_cast<std::size_t>(v) * num_procs_ + p;
      dyn_energy_[at] = w_[at] * (busy_power_[p] - static_power_[p]);
    }
  }

  bw_.assign(num_procs_ * num_procs_, 1.0);  // diagonal unused
  for (platform::ProcId a = 0; a < num_procs_; ++a) {
    for (platform::ProcId b = 0; b < num_procs_; ++b) {
      if (a != b) bw_[static_cast<std::size_t>(a) * num_procs_ + b] =
          platform.bandwidth(a, b);
    }
  }
  mean_bandwidth_ = platform.mean_bandwidth();

  procs_ = platform.alive_procs();
  column_of_.assign(num_procs_, kNoColumn);
  for (std::size_t pi = 0; pi < procs_.size(); ++pi) {
    column_of_[procs_[pi]] = pi;
  }

  total_static_power_ = 0.0;
  for (const platform::ProcId p : procs_) total_static_power_ += static_power_[p];
}

double CompiledProblem::edge_data(graph::TaskId u, graph::TaskId v) const {
  for (const graph::Adjacent& c : children(u)) {
    if (c.task == v) return c.data;
  }
  throw InvalidArgument("no edge " + std::to_string(u) + " -> " +
                        std::to_string(v));
}

}  // namespace hdlts::sim
