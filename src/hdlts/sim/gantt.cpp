#include "hdlts/sim/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace hdlts::sim {

void write_gantt(std::ostream& os, const Schedule& schedule,
                 const GanttOptions& options) {
  const double span = schedule.makespan();
  const std::size_t width = std::max<std::size_t>(options.width, 16);
  const double scale =
      span > 0.0 ? static_cast<double>(width) / span : 1.0;
  os << "makespan = " << span << "\n";
  for (platform::ProcId p = 0; p < schedule.num_procs(); ++p) {
    std::string row(width, '.');
    for (const Placement& pl : schedule.timeline(p)) {
      auto begin = static_cast<std::size_t>(std::floor(pl.start * scale));
      auto end = static_cast<std::size_t>(std::ceil(pl.finish * scale));
      begin = std::min(begin, width - 1);
      end = std::clamp(end, begin + 1, width);
      std::string label = (pl.duplicate ? "*" : "") + std::to_string(pl.task);
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t k = i - begin;
        row[i] = k < label.size() ? label[k] : '=';
      }
    }
    os << "P" << (p + 1) << " |" << row << "|\n";
  }
}

std::string to_gantt(const Schedule& schedule, const GanttOptions& options) {
  std::ostringstream os;
  write_gantt(os, schedule, options);
  return os.str();
}

void write_placements_csv(std::ostream& os, const Schedule& schedule,
                          const graph::TaskGraph* graph) {
  os << "task,name,proc,start,finish,duplicate\n";
  auto emit = [&](const Placement& pl) {
    os << pl.task << ','
       << (graph != nullptr ? graph->name(pl.task) : std::to_string(pl.task))
       << ',' << pl.proc << ',' << pl.start << ',' << pl.finish << ','
       << (pl.duplicate ? 1 : 0) << '\n';
  };
  for (graph::TaskId v = 0; v < schedule.num_tasks(); ++v) {
    if (schedule.is_placed(v)) emit(schedule.placement(v));
    for (const Placement& d : schedule.duplicates(v)) emit(d);
  }
}

}  // namespace hdlts::sim
