// Schedule visualization: ASCII Gantt chart and CSV placement dump.
#pragma once

#include <iosfwd>
#include <string>

#include "hdlts/sim/schedule.hpp"

namespace hdlts::sim {

struct GanttOptions {
  /// Total character width of the time axis.
  std::size_t width = 72;
  /// Label tasks by name instead of id when the graph is supplied.
  const graph::TaskGraph* graph = nullptr;
};

/// Renders one row per processor; blocks show task ids ('*' marks duplicate
/// placements). Intended for examples/debugging, not precise measurement.
void write_gantt(std::ostream& os, const Schedule& schedule,
                 const GanttOptions& options = {});

std::string to_gantt(const Schedule& schedule, const GanttOptions& options = {});

/// CSV with one row per placement: task,name,proc,start,finish,duplicate.
void write_placements_csv(std::ostream& os, const Schedule& schedule,
                          const graph::TaskGraph* graph = nullptr);

}  // namespace hdlts::sim
