#include "hdlts/sim/trace.hpp"

#include <ostream>
#include <sstream>

#include "hdlts/util/json.hpp"

namespace hdlts::sim {

std::string json_escape(const std::string& s) { return util::json_escape(s); }

namespace {

using util::write_json_number;

void write_block(std::ostream& os, const Placement& pl,
                 const graph::TaskGraph* graph) {
  os << "{\"task\":" << pl.task;
  if (graph != nullptr && graph->contains(pl.task)) {
    os << ",\"name\":\"" << json_escape(graph->name(pl.task)) << "\"";
  }
  os << ",\"proc\":" << pl.proc << ",\"start\":";
  write_json_number(os, pl.start);
  os << ",\"finish\":";
  write_json_number(os, pl.finish);
  os << ",\"duplicate\":" << (pl.duplicate ? "true" : "false") << "}";
}

}  // namespace

void write_schedule_json(std::ostream& os, const Schedule& schedule,
                         const graph::TaskGraph* graph) {
  os << "{\"makespan\":";
  write_json_number(os, schedule.makespan());
  os << ",\"processors\":" << schedule.num_procs() << ",\"blocks\":[";
  bool first = true;
  for (platform::ProcId p = 0; p < schedule.num_procs(); ++p) {
    for (const Placement& pl : schedule.timeline(p)) {
      if (!first) os << ",";
      first = false;
      write_block(os, pl, graph);
    }
  }
  os << "]}";
}

std::string schedule_json(const Schedule& schedule,
                          const graph::TaskGraph* graph) {
  std::ostringstream os;
  write_schedule_json(os, schedule, graph);
  return os.str();
}

void write_replay_json(std::ostream& os, const EngineResult& result) {
  // Every double funnels through util::write_json_number, which turns
  // non-finite values into `null` so the document stays valid JSON no matter
  // what times the engine hands us.
  os << "{\"makespan\":";
  write_json_number(os, result.makespan);
  os << ",\"matches_schedule\":"
     << (result.matches_schedule ? "true" : "false") << ",\"exact_times\":"
     << (result.exact_times ? "true" : "false") << ",\"deadlocked\":"
     << (result.deadlocked ? "true" : "false") << ",\"blocks\":[";
  for (std::size_t i = 0; i < result.blocks.size(); ++i) {
    const ExecutedBlock& b = result.blocks[i];
    if (i > 0) os << ",";
    os << "{\"task\":" << b.scheduled.task << ",\"proc\":" << b.scheduled.proc
       << ",\"duplicate\":" << (b.scheduled.duplicate ? "true" : "false")
       << ",\"scheduled\":[";
    write_json_number(os, b.scheduled.start);
    os << ",";
    write_json_number(os, b.scheduled.finish);
    os << "],\"actual\":[";
    write_json_number(os, b.actual_start);
    os << ",";
    write_json_number(os, b.actual_finish);
    os << "]}";
  }
  os << "]}";
}

std::string replay_json(const EngineResult& result) {
  std::ostringstream os;
  write_replay_json(os, result);
  return os.str();
}

}  // namespace hdlts::sim
