#include "hdlts/sim/trace.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace hdlts::sim {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_block(std::ostream& os, const Placement& pl,
                 const graph::TaskGraph* graph) {
  os << "{\"task\":" << pl.task;
  if (graph != nullptr && graph->contains(pl.task)) {
    os << ",\"name\":\"" << json_escape(graph->name(pl.task)) << "\"";
  }
  os << ",\"proc\":" << pl.proc << ",\"start\":" << pl.start
     << ",\"finish\":" << pl.finish
     << ",\"duplicate\":" << (pl.duplicate ? "true" : "false") << "}";
}

}  // namespace

void write_schedule_json(std::ostream& os, const Schedule& schedule,
                         const graph::TaskGraph* graph) {
  os.precision(15);
  os << "{\"makespan\":" << schedule.makespan()
     << ",\"processors\":" << schedule.num_procs() << ",\"blocks\":[";
  bool first = true;
  for (platform::ProcId p = 0; p < schedule.num_procs(); ++p) {
    for (const Placement& pl : schedule.timeline(p)) {
      if (!first) os << ",";
      first = false;
      write_block(os, pl, graph);
    }
  }
  os << "]}";
}

std::string schedule_json(const Schedule& schedule,
                          const graph::TaskGraph* graph) {
  std::ostringstream os;
  write_schedule_json(os, schedule, graph);
  return os.str();
}

void write_replay_json(std::ostream& os, const EngineResult& result) {
  os.precision(15);
  os << "{\"makespan\":" << result.makespan << ",\"matches_schedule\":"
     << (result.matches_schedule ? "true" : "false") << ",\"exact_times\":"
     << (result.exact_times ? "true" : "false") << ",\"deadlocked\":"
     << (result.deadlocked ? "true" : "false") << ",\"blocks\":[";
  for (std::size_t i = 0; i < result.blocks.size(); ++i) {
    const ExecutedBlock& b = result.blocks[i];
    if (i > 0) os << ",";
    os << "{\"task\":" << b.scheduled.task << ",\"proc\":" << b.scheduled.proc
       << ",\"duplicate\":" << (b.scheduled.duplicate ? "true" : "false")
       << ",\"scheduled\":[" << b.scheduled.start << "," << b.scheduled.finish
       << "],\"actual\":[" << b.actual_start << "," << b.actual_finish
       << "]}";
  }
  os << "]}";
}

std::string replay_json(const EngineResult& result) {
  std::ostringstream os;
  write_replay_json(os, result);
  return os.str();
}

}  // namespace hdlts::sim
