#include "hdlts/sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace hdlts::sim {

namespace {

constexpr double kEps = 1e-6;
constexpr double kInf = std::numeric_limits<double>::infinity();

struct Block {
  Placement scheduled;
  double actual_start = -1.0;
  double actual_finish = -1.0;
  bool started = false;
  bool finished = false;
};

struct Completion {
  double time;
  std::size_t block;
  bool operator>(const Completion& o) const { return time > o.time; }
};

}  // namespace

EngineResult replay(const Problem& problem, const Schedule& schedule) {
  // The ready-time scan below touches every parent edge once per candidate
  // start; read through the flat CSR view instead of the pointer-heavy
  // TaskGraph (same data, same arithmetic — compiled once per Problem).
  const CompiledProblem& c = problem.compiled();
  const std::size_t n = c.num_tasks();
  for (graph::TaskId v = 0; v < n; ++v) {
    if (!schedule.is_placed(v)) {
      throw InvalidArgument("replay requires a fully placed schedule; task " +
                            std::to_string(v) + " is missing");
    }
  }

  // Collect all blocks per processor in timeline order. Zero-duration
  // blocks (pseudo entry/exit tasks) occupy no processor time: they are
  // exempt from the FIFO and run the moment their data is ready (at their
  // scheduled time when feasible).
  std::vector<Block> blocks;
  std::vector<std::vector<std::size_t>> proc_queue(schedule.num_procs());
  std::vector<std::size_t> free_blocks;
  constexpr double kZero = 1e-9;
  for (platform::ProcId p = 0; p < schedule.num_procs(); ++p) {
    for (const Placement& pl : schedule.timeline(p)) {
      if (pl.finish - pl.start <= kZero) {
        free_blocks.push_back(blocks.size());
      } else {
        proc_queue[p].push_back(blocks.size());
      }
      blocks.push_back(Block{pl, -1.0, -1.0, false, false});
    }
  }

  // Completed copies of each task: (processor, actual finish).
  std::vector<std::vector<std::pair<platform::ProcId, double>>> copies(n);
  std::vector<std::size_t> head(schedule.num_procs(), 0);
  std::vector<double> proc_free(schedule.num_procs(), 0.0);
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      events;
  std::size_t remaining = blocks.size();

  // Earliest physical arrival of task v's output on processor k, given the
  // copies completed so far; +inf when no copy of some parent is done.
  auto ready_time = [&](graph::TaskId v, platform::ProcId k) {
    double ready = 0.0;
    for (const graph::Adjacent& parent : c.parents(v)) {
      double arrival = kInf;
      for (const auto& [q, finish] : copies[parent.task]) {
        arrival =
            std::min(arrival, finish + c.comm_time_data(parent.data, q, k));
      }
      ready = std::max(ready, arrival);
      if (ready == kInf) break;
    }
    return ready;
  };

  while (remaining > 0) {
    // Best startable block: the head of any processor queue, or any
    // zero-duration block whose data is ready (those run at their scheduled
    // time when feasible, without holding the processor).
    double best_start = kInf;
    std::size_t best_block = static_cast<std::size_t>(-1);
    bool best_is_free = false;
    for (platform::ProcId p = 0; p < schedule.num_procs(); ++p) {
      if (head[p] >= proc_queue[p].size()) continue;
      const Block& b = blocks[proc_queue[p][head[p]]];
      if (b.started) continue;
      const double ready = ready_time(b.scheduled.task, p);
      if (ready == kInf) continue;
      const double start = std::max(ready, proc_free[p]);
      if (start < best_start) {
        best_start = start;
        best_block = proc_queue[p][head[p]];
        best_is_free = false;
      }
    }
    for (const std::size_t bi : free_blocks) {
      const Block& b = blocks[bi];
      if (b.started) continue;
      const double ready = ready_time(b.scheduled.task, b.scheduled.proc);
      if (ready == kInf) continue;
      const double start = std::max(ready, b.scheduled.start);
      if (start < best_start) {
        best_start = start;
        best_block = bi;
        best_is_free = true;
      }
    }
    const double next_event = events.empty() ? kInf : events.top().time;

    if (best_start <= next_event && best_start != kInf) {
      // Commit the start: no pending completion can deliver data earlier
      // than best_start, because a copy finishing at t delivers at >= t.
      Block& b = blocks[best_block];
      b.started = true;
      b.actual_start = best_start;
      b.actual_finish =
          best_start + c.exec_time(b.scheduled.task, b.scheduled.proc);
      if (!best_is_free) proc_free[b.scheduled.proc] = b.actual_finish;
      events.push(Completion{b.actual_finish, best_block});
      continue;
    }

    if (next_event == kInf) {
      // Nothing startable and nothing in flight: the schedule's processor
      // order contradicts task precedence.
      EngineResult result;
      for (const Block& b : blocks) {
        result.blocks.push_back({b.scheduled, b.actual_start, b.actual_finish});
      }
      result.deadlocked = true;
      return result;
    }

    const Completion ev = events.top();
    events.pop();
    Block& b = blocks[ev.block];
    b.finished = true;
    copies[b.scheduled.task].emplace_back(b.scheduled.proc, b.actual_finish);
    for (platform::ProcId p = 0; p < schedule.num_procs(); ++p) {
      if (head[p] < proc_queue[p].size() &&
          proc_queue[p][head[p]] == ev.block) {
        ++head[p];
      }
    }
    --remaining;
  }

  EngineResult result;
  result.matches_schedule = true;
  result.exact_times = true;
  for (const Block& b : blocks) {
    result.blocks.push_back({b.scheduled, b.actual_start, b.actual_finish});
    result.makespan = std::max(result.makespan, b.actual_finish);
    if (b.actual_finish > b.scheduled.finish + kEps) {
      result.matches_schedule = false;
    }
    if (std::abs(b.actual_start - b.scheduled.start) > kEps ||
        std::abs(b.actual_finish - b.scheduled.finish) > kEps) {
      result.exact_times = false;
    }
  }
  return result;
}

}  // namespace hdlts::sim
