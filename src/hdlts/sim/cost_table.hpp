// The W matrix (paper Definition 1): execution time of each task on each
// processor, plus the per-task summaries the schedulers rank with.
#pragma once

#include <span>
#include <vector>

#include "hdlts/graph/task_graph.hpp"
#include "hdlts/platform/platform.hpp"

namespace hdlts::sim {

class CostTable {
 public:
  /// An n×p table initialized to zero.
  CostTable(std::size_t num_tasks, std::size_t num_procs);

  std::size_t num_tasks() const { return num_tasks_; }
  std::size_t num_procs() const { return num_procs_; }

  double operator()(graph::TaskId v, platform::ProcId p) const {
    return cost_[index(v, p)];
  }
  void set(graph::TaskId v, platform::ProcId p, double cost);

  /// Execution times of task v on all processors.
  std::span<const double> row(graph::TaskId v) const;

  /// Mean execution time over all processors (paper Eq. 1).
  double mean(graph::TaskId v) const;
  /// Minimum execution time over all processors (SLR denominator, Eq. 10).
  double min(graph::TaskId v) const;
  /// Sample standard deviation of the row (SDBATS rank weight).
  double stddev_sample(graph::TaskId v) const;

  /// Derives W from task work and processor speeds: W(v,p) = work(v)/speed.
  static CostTable from_speeds(const graph::TaskGraph& g,
                               std::span<const double> speeds);

 private:
  std::size_t index(graph::TaskId v, platform::ProcId p) const {
    HDLTS_EXPECTS(v < num_tasks_ && p < num_procs_);
    return static_cast<std::size_t>(v) * num_procs_ + p;
  }

  std::size_t num_tasks_;
  std::size_t num_procs_;
  std::vector<double> cost_;
};

}  // namespace hdlts::sim
