// The scheduling problem bundle: a workflow graph, its W cost table, and the
// platform it is mapped onto (paper §III: G = (V, E, W, C) plus the HCE).
#pragma once

#include <memory>
#include <vector>

#include "hdlts/graph/task_graph.hpp"
#include "hdlts/platform/platform.hpp"
#include "hdlts/sim/compiled.hpp"
#include "hdlts/sim/cost_table.hpp"

namespace hdlts::sim {

/// Owning bundle produced by the workload generators.
struct Workload {
  graph::TaskGraph graph;
  CostTable costs;
  platform::Platform platform;

  /// Throws InvalidArgument when dimensions disagree or the graph is cyclic.
  void validate() const;
};

/// Non-owning, cheap-to-copy view of a Workload with the cost queries every
/// scheduler needs. The Workload must outlive the Problem.
class Problem {
 public:
  explicit Problem(const Workload& w);

  const graph::TaskGraph& graph() const { return *graph_; }
  const CostTable& costs() const { return *costs_; }
  const platform::Platform& platform() const { return *platform_; }

  std::size_t num_tasks() const { return graph_->num_tasks(); }
  std::size_t num_procs() const { return platform_->num_procs(); }

  /// W(v, p) — execution time of task v on processor p (Definition 1).
  double exec_time(graph::TaskId v, platform::ProcId p) const {
    return (*costs_)(v, p);
  }

  /// Data volume on edge u -> v; throws if the edge does not exist.
  double data(graph::TaskId u, graph::TaskId v) const {
    return graph_->edge_data(u, v);
  }

  /// Communication time for edge u -> v when u runs on pu and v on pv
  /// (Definition 2); zero on the same processor.
  double comm_time(graph::TaskId u, graph::TaskId v, platform::ProcId pu,
                   platform::ProcId pv) const {
    if (pu == pv) return 0.0;
    return graph_->edge_data(u, v) / platform_->bandwidth(pu, pv);
  }

  /// Same as comm_time but with a pre-fetched data volume (hot path: callers
  /// iterate adjacency lists that already carry the volume).
  double comm_time_data(double data, platform::ProcId pu,
                        platform::ProcId pv) const {
    if (pu == pv) return 0.0;
    return data / platform_->bandwidth(pu, pv);
  }

  /// Processor-independent mean communication time of edge u -> v, used by
  /// rank computations (HEFT-style): data / mean bandwidth.
  double mean_comm(graph::TaskId u, graph::TaskId v) const {
    return graph_->edge_data(u, v) / mean_bandwidth_;
  }
  double mean_comm_data(double data) const { return data / mean_bandwidth_; }

  /// Alive processors, in increasing id order (schedulers must only place
  /// work here; the failure extension kills processors between runs).
  const std::vector<platform::ProcId>& procs() const { return procs_; }

  /// The frozen flat view of this problem, compiled eagerly at construction
  /// and shared by copies (a Problem copy is still cheap). Like the procs_
  /// snapshot above, it reflects the workload at construction time: mutate
  /// the workload and you must build a fresh Problem.
  const CompiledProblem& compiled() const { return *compiled_; }

 private:
  const graph::TaskGraph* graph_;
  const CostTable* costs_;
  const platform::Platform* platform_;
  std::vector<platform::ProcId> procs_;
  double mean_bandwidth_;
  std::shared_ptr<const CompiledProblem> compiled_;
};

}  // namespace hdlts::sim
