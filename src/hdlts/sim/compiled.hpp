// Frozen, immutable compiled view of a scheduling problem.
//
// graph::TaskGraph / sim::CostTable / platform::Platform are the mutable
// construction API: vector-of-vectors adjacency, bounds-checked accessors,
// liveness that can change between runs. Every scheduler hot loop used to
// read them directly — pointer-chasing per adjacency visit plus an always-on
// contract check per cost lookup. CompiledProblem is built once per
// (TaskGraph, CostTable, Platform) triple (eagerly, by the sim::Problem
// constructor) and flattens everything the hot loops touch:
//
//   - CSR children/parents: offset array + flat {task, data} spans, adjacency
//     order preserved from the TaskGraph (iteration order is part of the
//     bitwise-reproducibility contract);
//   - row-major W matrix (task x all processors, a verbatim copy of the cost
//     table) and a flat P x P bandwidth table;
//   - precomputed per-task mean / min / sample-stddev cost and the free-task
//     flag, computed with the same util::stats calls CostTable uses, so the
//     cached double is bit-identical to what the legacy path recomputes;
//   - topological order, precedence levels, entry/exit lists, the alive
//     processor list and its ProcId -> column map.
//
// Accessors are deliberately unchecked (no HDLTS_EXPECTS): all indices were
// validated once at compile time, and removing the per-lookup branch from
// the scheduler inner loops is a large part of the layout speedup
// (bench/micro_layout). Anything mutating the underlying workload must build
// a fresh Problem (and hence a fresh CompiledProblem) — the same snapshot
// semantics Problem already had for its alive-processor list.
#pragma once

#include <span>
#include <vector>

#include "hdlts/graph/task_graph.hpp"
#include "hdlts/platform/platform.hpp"
#include "hdlts/sim/cost_table.hpp"

namespace hdlts::sim {

class CompiledProblem {
 public:
  /// Validates dimensions and acyclicity, then flattens. Throws
  /// InvalidArgument exactly where Workload::validate would.
  CompiledProblem(const graph::TaskGraph& g, const CostTable& costs,
                  const platform::Platform& platform);

  std::size_t num_tasks() const { return num_tasks_; }
  /// Total platform processors (columns of W); not all need be alive.
  std::size_t num_procs() const { return num_procs_; }
  std::size_t num_edges() const { return child_adj_.size(); }

  /// Alive processors in increasing id order (the scheduling domain).
  std::span<const platform::ProcId> procs() const { return procs_; }
  std::size_t num_alive() const { return procs_.size(); }

  static constexpr std::size_t kNoColumn = static_cast<std::size_t>(-1);
  /// Position of p in procs(), or kNoColumn for a dead processor.
  std::size_t column_of(platform::ProcId p) const { return column_of_[p]; }

  // --- CSR adjacency (order preserved from the TaskGraph) ---

  std::span<const graph::Adjacent> children(graph::TaskId v) const {
    return {child_adj_.data() + child_off_[v],
            child_off_[v + 1] - child_off_[v]};
  }
  std::span<const graph::Adjacent> parents(graph::TaskId v) const {
    return {parent_adj_.data() + parent_off_[v],
            parent_off_[v + 1] - parent_off_[v]};
  }
  std::size_t out_degree(graph::TaskId v) const {
    return child_off_[v + 1] - child_off_[v];
  }
  std::size_t in_degree(graph::TaskId v) const {
    return parent_off_[v + 1] - parent_off_[v];
  }
  /// Data volume on edge u -> v; throws InvalidArgument if absent.
  double edge_data(graph::TaskId u, graph::TaskId v) const;

  // --- costs ---

  double exec_time(graph::TaskId v, platform::ProcId p) const {
    return w_[static_cast<std::size_t>(v) * num_procs_ + p];
  }
  /// Full W row of task v (all processors, alive or not).
  std::span<const double> cost_row(graph::TaskId v) const {
    return {w_.data() + static_cast<std::size_t>(v) * num_procs_, num_procs_};
  }
  double mean_cost(graph::TaskId v) const { return mean_cost_[v]; }
  double min_cost(graph::TaskId v) const { return min_cost_[v]; }
  double stddev_cost(graph::TaskId v) const { return stddev_cost_[v]; }
  /// True when the task costs nothing on every processor (pseudo task).
  bool is_free_task(graph::TaskId v) const { return free_task_[v] != 0; }

  // --- energy (cached from the platform power model) ---
  //
  // Decomposition: running task v on processor p costs
  //   dyn_energy(v, p) = W(v, p) * (busy_power(p) - idle_power(p))
  // joules above the baseline the processor burns anyway, and every alive
  // processor additionally burns static_power(p) = idle_power(p) joules per
  // unit time for the whole schedule horizon. Total schedule energy is then
  //   sum(dyn_energy over placements) + makespan * total_static_power(),
  // which equals the busy/idle split metrics::energy reports.

  double dyn_energy(graph::TaskId v, platform::ProcId p) const {
    return dyn_energy_[static_cast<std::size_t>(v) * num_procs_ + p];
  }
  /// Full dynamic-energy row of task v (all processors, alive or not).
  std::span<const double> dyn_energy_row(graph::TaskId v) const {
    return {dyn_energy_.data() + static_cast<std::size_t>(v) * num_procs_,
            num_procs_};
  }
  /// Baseline (idle) draw of processor p, cached from the platform.
  double static_power(platform::ProcId p) const { return static_power_[p]; }
  /// Busy draw of processor p, cached from the platform.
  double busy_power(platform::ProcId p) const { return busy_power_[p]; }
  /// Sum of static_power over the alive processors.
  double total_static_power() const { return total_static_power_; }

  // --- communication ---

  double bandwidth(platform::ProcId a, platform::ProcId b) const {
    return bw_[static_cast<std::size_t>(a) * num_procs_ + b];
  }
  double comm_time_data(double data, platform::ProcId pu,
                        platform::ProcId pv) const {
    if (pu == pv) return 0.0;
    return data / bw_[static_cast<std::size_t>(pu) * num_procs_ + pv];
  }
  double mean_comm_data(double data) const { return data / mean_bandwidth_; }
  double mean_bandwidth() const { return mean_bandwidth_; }

  // --- structure ---

  std::span<const graph::TaskId> topo_order() const { return topo_; }
  std::span<const graph::TaskId> entry_tasks() const { return entries_; }
  std::span<const graph::TaskId> exit_tasks() const { return exits_; }
  /// Precedence level of each task (entries at 0).
  std::span<const std::size_t> levels() const { return levels_; }

  /// Uniform-view hook (see sim/views.hpp): the object
  /// sim::Schedule::ready_time dispatches on.
  const CompiledProblem& ready_base() const { return *this; }

 private:
  std::size_t num_tasks_ = 0;
  std::size_t num_procs_ = 0;

  std::vector<std::size_t> child_off_;   // V + 1
  std::vector<std::size_t> parent_off_;  // V + 1
  std::vector<graph::Adjacent> child_adj_;
  std::vector<graph::Adjacent> parent_adj_;

  std::vector<double> w_;   // V x P row-major
  std::vector<double> bw_;  // P x P row-major, diagonal unused

  std::vector<double> mean_cost_;
  std::vector<double> min_cost_;
  std::vector<double> stddev_cost_;
  std::vector<unsigned char> free_task_;

  std::vector<double> dyn_energy_;     // V x P row-major
  std::vector<double> static_power_;   // P (= platform idle power)
  std::vector<double> busy_power_;     // P
  double total_static_power_ = 0.0;    // over alive processors

  std::vector<platform::ProcId> procs_;
  std::vector<std::size_t> column_of_;

  std::vector<graph::TaskId> topo_;
  std::vector<graph::TaskId> entries_;
  std::vector<graph::TaskId> exits_;
  std::vector<std::size_t> levels_;

  double mean_bandwidth_ = 1.0;
};

}  // namespace hdlts::sim
