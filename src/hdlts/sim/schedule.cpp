#include "hdlts/sim/schedule.hpp"

#include <algorithm>
#include <cmath>

namespace hdlts::sim {

namespace {
constexpr double kEps = 1e-7;
}

Schedule::Schedule(std::size_t num_tasks, std::size_t num_procs)
    : primary_(num_tasks), dup_(num_tasks), timeline_(num_procs),
      avail_(num_procs, 0.0) {
  if (num_procs == 0) throw InvalidArgument("schedule needs >= 1 processor");
}

void Schedule::reset(std::size_t num_tasks, std::size_t num_procs) {
  if (num_procs == 0) throw InvalidArgument("schedule needs >= 1 processor");
  // clear() + resize() keeps each inner vector's capacity, which is what
  // makes a recycled Schedule allocation-free once warmed up.
  std::fill(primary_.begin(), primary_.end(), Placement{});
  primary_.resize(num_tasks);
  for (auto& d : dup_) d.clear();
  dup_.resize(num_tasks);
  for (auto& line : timeline_) line.clear();
  timeline_.resize(num_procs);
  avail_.assign(num_procs, 0.0);
  num_placed_ = 0;
  makespan_ = 0.0;
  change_log_.clear();
}

void Schedule::place(graph::TaskId task, platform::ProcId proc, double start,
                     double finish) {
  if (task >= num_tasks()) {
    throw InvalidArgument("unknown task id " + std::to_string(task));
  }
  if (is_placed(task)) {
    throw InvalidArgument("task " + std::to_string(task) + " already placed");
  }
  const Placement pl{task, proc, start, finish, /*duplicate=*/false};
  // Throws on overlap before mutating primary_.
  insert_into_timeline(pl, /*counts_for_makespan=*/true);
  primary_[task] = pl;
  ++num_placed_;
}

void Schedule::place_duplicate(graph::TaskId task, platform::ProcId proc,
                               double start, double finish) {
  if (task >= num_tasks()) {
    throw InvalidArgument("unknown task id " + std::to_string(task));
  }
  const Placement pl{task, proc, start, finish, /*duplicate=*/true};
  insert_into_timeline(pl, /*counts_for_makespan=*/true);
  dup_[task].push_back(pl);
}

void Schedule::place_busy(platform::ProcId proc, double start, double finish) {
  // A pre-occupied interval blocks the lane but is not an execution: the
  // makespan stays the completion time of the workload itself, so an idle
  // tail on a background-loaded lane never inflates it.
  const Placement pl{graph::kInvalidTask, proc, start, finish,
                     /*duplicate=*/false};
  insert_into_timeline(pl, /*counts_for_makespan=*/false);
}

void Schedule::insert_into_timeline(const Placement& pl,
                                    bool counts_for_makespan) {
  if (pl.proc >= num_procs()) {
    throw InvalidArgument("unknown processor id " + std::to_string(pl.proc));
  }
  if (pl.start < 0.0 || pl.finish < pl.start) {
    throw InvalidArgument("placement interval is malformed");
  }
  auto& line = timeline_[pl.proc];
  const auto pos = std::lower_bound(
      line.begin(), line.end(), pl,
      [](const Placement& a, const Placement& b) { return a.start < b.start; });
  // Zero-duration placements (pseudo entry/exit tasks) occupy no time and
  // conflict with nothing; a real placement must not overlap its nearest
  // positive-length neighbours (zero-length records in between are skipped).
  if (pl.finish - pl.start > kEps) {
    for (auto it = pos; it != line.end(); ++it) {
      if (it->finish - it->start <= kEps) continue;
      if (pl.finish > it->start + kEps) {
        throw InvalidArgument("placement overlaps successor on processor " +
                              std::to_string(pl.proc));
      }
      break;
    }
    for (auto it = pos; it != line.begin();) {
      --it;
      if (it->finish - it->start <= kEps) continue;
      if (it->finish > pl.start + kEps) {
        throw InvalidArgument("placement overlaps predecessor on processor " +
                              std::to_string(pl.proc));
      }
      break;
    }
  }
  line.insert(pos, pl);
  // All validation passed: fold the record into the incremental caches.
  avail_[pl.proc] = std::max(avail_[pl.proc], pl.finish);
  if (counts_for_makespan) makespan_ = std::max(makespan_, pl.finish);
  change_log_.push_back(pl.proc);
}

bool Schedule::is_placed(graph::TaskId task) const {
  return task < num_tasks() && primary_[task].task != graph::kInvalidTask;
}

const Placement& Schedule::placement(graph::TaskId task) const {
  if (!is_placed(task)) {
    throw InvalidArgument("task " + std::to_string(task) + " is not placed");
  }
  return primary_[task];
}

std::span<const Placement> Schedule::duplicates(graph::TaskId task) const {
  if (task >= num_tasks()) {
    throw InvalidArgument("unknown task id " + std::to_string(task));
  }
  return dup_[task];
}

double Schedule::finish_time(graph::TaskId task) const {
  return placement(task).finish;
}

namespace {

/// Shared ready-time loop: `parents` yields {task, data} in the graph's
/// adjacency order, `comm` must be the view's comm_time_data. One body for
/// the legacy and compiled overloads keeps the FP op sequence identical.
template <typename ProblemLike>
double ready_time_impl(const Schedule& schedule,
                       const std::vector<std::vector<Placement>>& dup,
                       const ProblemLike& problem, graph::TaskId v,
                       platform::ProcId proc) {
  double ready = 0.0;
  for (const graph::Adjacent& parent : problem.parents(v)) {
    const Placement& pl = schedule.placement(parent.task);
    double arrival =
        pl.finish + problem.comm_time_data(parent.data, pl.proc, proc);
    for (const Placement& d : dup[parent.task]) {
      arrival = std::min(
          arrival, d.finish + problem.comm_time_data(parent.data, d.proc, proc));
    }
    ready = std::max(ready, arrival);
  }
  return ready;
}

/// Adapter giving Problem the parents()/comm_time_data() shape.
struct ProblemParents {
  const Problem& p;
  std::span<const graph::Adjacent> parents(graph::TaskId v) const {
    return p.graph().parents(v);
  }
  double comm_time_data(double data, platform::ProcId pu,
                        platform::ProcId pv) const {
    return p.comm_time_data(data, pu, pv);
  }
};

}  // namespace

double Schedule::ready_time(const Problem& problem, graph::TaskId v,
                            platform::ProcId proc) const {
  return ready_time_impl(*this, dup_, ProblemParents{problem}, v, proc);
}

double Schedule::ready_time(const CompiledProblem& problem, graph::TaskId v,
                            platform::ProcId proc) const {
  return ready_time_impl(*this, dup_, problem, v, proc);
}

std::span<const Placement> Schedule::timeline(platform::ProcId proc) const {
  if (proc >= num_procs()) {
    throw InvalidArgument("unknown processor id " + std::to_string(proc));
  }
  return timeline_[proc];
}

double Schedule::proc_available(platform::ProcId proc) const {
  // Zero-length records may sit anywhere in the timeline, so the last entry
  // by start is not necessarily the latest finish; avail_ tracks the true
  // max finish incrementally.
  if (proc >= num_procs()) {
    throw InvalidArgument("unknown processor id " + std::to_string(proc));
  }
  return avail_[proc];
}

std::span<const platform::ProcId> Schedule::procs_changed_since(
    std::uint64_t since) const {
  if (since > change_log_.size()) {
    throw InvalidArgument("state version " + std::to_string(since) +
                          " is from the future");
  }
  return {change_log_.data() + since, change_log_.size() - since};
}

double Schedule::earliest_start(platform::ProcId proc, double ready,
                                double duration, bool insertion) const {
  const auto line = timeline(proc);
  if (!insertion) return std::max(ready, avail_[proc]);
  // A zero-duration block (pseudo task) occupies no time and conflicts with
  // nothing, so it can run the moment its data is ready.
  if (duration <= kEps) return ready;
  // Everything on the timeline finishes by avail_; a block whose data is
  // ready no earlier than that can start at `ready` without scanning gaps.
  if (ready >= avail_[proc]) return ready;
  // Scan idle gaps in chronological order; the first gap that can hold
  // [start, start + duration) with start >= ready wins (HEFT insertion).
  // Zero-duration records occupy no time and never close a gap.
  double cursor = ready;
  for (const Placement& pl : line) {
    if (pl.finish - pl.start <= kEps) continue;
    if (pl.start >= cursor + duration - kEps) break;  // gap before pl fits
    cursor = std::max(cursor, pl.finish);
  }
  return cursor;
}

std::vector<std::string> Schedule::validate(const Problem& problem) const {
  std::vector<std::string> violations;
  auto complain = [&violations](std::string msg) {
    violations.push_back(std::move(msg));
  };

  if (num_tasks() != problem.num_tasks() ||
      num_procs() != problem.num_procs()) {
    complain("schedule dimensions do not match the problem");
    return violations;
  }

  const auto& alive = problem.procs();
  auto proc_is_alive = [&alive](platform::ProcId p) {
    return std::binary_search(alive.begin(), alive.end(), p);
  };

  auto check_placement = [&](const Placement& pl, const char* kind) {
    if (!proc_is_alive(pl.proc)) {
      complain(std::string(kind) + " of task " + std::to_string(pl.task) +
               " uses dead processor " + std::to_string(pl.proc));
    }
    const double expected = problem.exec_time(pl.task, pl.proc);
    if (std::abs((pl.finish - pl.start) - expected) > kEps) {
      complain(std::string(kind) + " of task " + std::to_string(pl.task) +
               " has duration " + std::to_string(pl.finish - pl.start) +
               " but W(v,p) = " + std::to_string(expected));
    }
    const double ready = ready_time(problem, pl.task, pl.proc);
    if (pl.start + kEps < ready) {
      complain(std::string(kind) + " of task " + std::to_string(pl.task) +
               " starts at " + std::to_string(pl.start) +
               " before its data is ready at " + std::to_string(ready));
    }
  };

  for (graph::TaskId v = 0; v < num_tasks(); ++v) {
    if (!is_placed(v)) {
      complain("task " + std::to_string(v) + " is not placed");
      continue;
    }
    check_placement(primary_[v], "placement");
    for (const Placement& d : dup_[v]) check_placement(d, "duplicate");
  }

  auto block_label = [](const Placement& pl) {
    return pl.task == graph::kInvalidTask ? std::string("busy interval")
                                          : std::to_string(pl.task);
  };
  for (platform::ProcId p = 0; p < num_procs(); ++p) {
    const auto line = timeline(p);
    // Compare consecutive positive-length blocks; zero-duration records
    // (pseudo tasks) occupy no time and cannot overlap anything. Busy
    // intervals participate like any other block.
    const Placement* prev = nullptr;
    for (const Placement& pl : line) {
      if (pl.finish - pl.start <= kEps) continue;
      if (prev != nullptr && prev->finish > pl.start + kEps) {
        complain("overlap on processor " + std::to_string(p) + " between " +
                 block_label(*prev) + " and " + block_label(pl));
      }
      prev = &pl;
    }
  }
  return violations;
}

}  // namespace hdlts::sim
