// Structured (JSON) export of schedules and replay traces, for downstream
// tooling (timeline viewers, notebooks) without committing to a JSON
// library dependency.
#pragma once

#include <iosfwd>
#include <string>

#include "hdlts/sim/engine.hpp"
#include "hdlts/sim/schedule.hpp"

namespace hdlts::sim {

/// {"makespan": ..., "processors": N, "blocks": [{"task":, "name":, "proc":,
///  "start":, "finish":, "duplicate":}, ...]}
void write_schedule_json(std::ostream& os, const Schedule& schedule,
                         const graph::TaskGraph* graph = nullptr);
std::string schedule_json(const Schedule& schedule,
                          const graph::TaskGraph* graph = nullptr);

/// {"makespan":, "matches_schedule":, "exact_times":, "deadlocked":,
///  "blocks": [{"task":, "proc":, "scheduled": [s, f], "actual": [s, f]}]}
void write_replay_json(std::ostream& os, const EngineResult& result);
std::string replay_json(const EngineResult& result);

/// Escapes a string for embedding in JSON (quotes, backslashes, control
/// characters).
std::string json_escape(const std::string& s);

}  // namespace hdlts::sim
