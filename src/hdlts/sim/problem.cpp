#include "hdlts/sim/problem.hpp"

#include "hdlts/graph/algorithms.hpp"

namespace hdlts::sim {

void Workload::validate() const {
  if (graph.num_tasks() != costs.num_tasks()) {
    throw InvalidArgument("cost table has " +
                          std::to_string(costs.num_tasks()) +
                          " tasks but graph has " +
                          std::to_string(graph.num_tasks()));
  }
  if (platform.num_procs() != costs.num_procs()) {
    throw InvalidArgument("cost table has " +
                          std::to_string(costs.num_procs()) +
                          " processors but platform has " +
                          std::to_string(platform.num_procs()));
  }
  if (!graph::is_acyclic(graph)) {
    throw InvalidArgument("workflow graph contains a cycle");
  }
}

Problem::Problem(const Workload& w)
    : graph_(&w.graph),
      costs_(&w.costs),
      platform_(&w.platform),
      procs_(w.platform.alive_procs()),
      mean_bandwidth_(w.platform.mean_bandwidth()) {
  w.validate();
  if (procs_.empty()) {
    throw InvalidArgument("no alive processors to schedule on");
  }
  compiled_ = std::make_shared<const CompiledProblem>(w.graph, w.costs,
                                                      w.platform);
}

}  // namespace hdlts::sim
