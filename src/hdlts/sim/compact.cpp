#include "hdlts/sim/compact.hpp"

#include <algorithm>

namespace hdlts::sim {

Schedule compact(const Problem& problem, const Schedule& schedule) {
  const EngineResult replayed = replay(problem, schedule);
  if (replayed.deadlocked) {
    throw InvalidArgument(
        "cannot compact: schedule deadlocks under replay (processor order "
        "contradicts precedence)");
  }
  // Re-place blocks at their actual times, in start order so the timeline
  // insertion never sees a transient overlap.
  std::vector<const ExecutedBlock*> blocks;
  blocks.reserve(replayed.blocks.size());
  for (const ExecutedBlock& b : replayed.blocks) blocks.push_back(&b);
  std::sort(blocks.begin(), blocks.end(),
            [](const ExecutedBlock* a, const ExecutedBlock* b) {
              if (a->actual_start != b->actual_start) {
                return a->actual_start < b->actual_start;
              }
              return a->scheduled.task < b->scheduled.task;
            });
  Schedule out(schedule.num_tasks(), schedule.num_procs());
  for (const ExecutedBlock* b : blocks) {
    if (b->scheduled.duplicate) {
      out.place_duplicate(b->scheduled.task, b->scheduled.proc,
                          b->actual_start, b->actual_finish);
    } else {
      out.place(b->scheduled.task, b->scheduled.proc, b->actual_start,
                b->actual_finish);
    }
  }
  return out;
}

}  // namespace hdlts::sim
