// Discrete-event execution engine.
//
// Replays a schedule against the platform with true message semantics: each
// processor executes its placements in timeline order, a block starts when
// the processor is free and every input has physically arrived (earliest
// copy of each parent, per-edge communication delay), and completions drive
// data-arrival updates. For a valid analytic schedule the replayed times
// coincide with the scheduled ones — an independent cross-check used by the
// test suite. For an infeasible schedule the replay either slips (actual
// times exceed scheduled) or deadlocks (processor order contradicts
// precedence), both of which are reported.
#pragma once

#include <vector>

#include "hdlts/sim/schedule.hpp"

namespace hdlts::sim {

struct ExecutedBlock {
  Placement scheduled;
  double actual_start = 0.0;
  double actual_finish = 0.0;
};

struct EngineResult {
  std::vector<ExecutedBlock> blocks;
  double makespan = 0.0;
  /// True when no block finished *later* than its scheduled time: the
  /// schedule is an executable contract. Blocks may legitimately finish
  /// early — a duplicate placed while scheduling a later task can deliver
  /// data sooner than the remote arrival an earlier task was quoted.
  bool matches_schedule = false;
  /// Stricter: every block ran exactly at its scheduled time (within eps).
  bool exact_times = false;
  /// True when the replay could not make progress (invalid schedule).
  bool deadlocked = false;
};

/// Replays `schedule` on `problem`'s platform. Requires a fully placed
/// schedule (every task has a primary placement).
EngineResult replay(const Problem& problem, const Schedule& schedule);

}  // namespace hdlts::sim
