// Schedule compaction: left-shifts every block to its earliest physically
// feasible time by replaying the schedule in the discrete-event engine and
// re-anchoring blocks at their actual times. Preserves processor
// assignments, per-processor order, and duplicate structure. Never
// increases the makespan of a contract-valid schedule, and is idempotent.
#pragma once

#include "hdlts/sim/engine.hpp"
#include "hdlts/sim/schedule.hpp"

namespace hdlts::sim {

/// Throws InvalidArgument when the schedule deadlocks under replay (its
/// processor order contradicts precedence).
Schedule compact(const Problem& problem, const Schedule& schedule);

}  // namespace hdlts::sim
