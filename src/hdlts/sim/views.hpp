// Uniform problem-view interface for the dual-path scheduler bodies.
//
// Every ported scheduler is one template function instantiated twice: once
// over sim::CompiledProblem (flat CSR/W arrays, the default) and once over
// sim::LegacyView below (the original pointer-chasing TaskGraph/CostTable
// reads, kept selectable so bench/micro_layout can measure exactly what the
// compiled layout buys). Because both views hand the template the same
// double values in the same iteration order, the two instantiations produce
// bit-identical schedules — the property tests/compiled_equiv_test.cpp pins.
//
// The interface (duck-typed; CompiledProblem implements it natively):
//   num_tasks, num_procs, procs, children, parents, in_degree, out_degree,
//   edge_data, exec_time, comm_time_data, mean_comm_data, mean_cost,
//   stddev_cost, topo_order, entry_tasks, levels, is_free_task, ready_base.
// Collection-returning calls hand back a span (compiled) or a freshly
// computed vector (legacy) — template code binds them with `const auto`.
// ready_base() returns the object sim::Schedule::ready_time dispatches on.
#pragma once

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sim/problem.hpp"

namespace hdlts::sim {

class LegacyView {
 public:
  explicit LegacyView(const Problem& p) : p_(&p) {}

  std::size_t num_tasks() const { return p_->num_tasks(); }
  std::size_t num_procs() const { return p_->num_procs(); }
  const std::vector<platform::ProcId>& procs() const { return p_->procs(); }

  std::span<const graph::Adjacent> children(graph::TaskId v) const {
    return p_->graph().children(v);
  }
  std::span<const graph::Adjacent> parents(graph::TaskId v) const {
    return p_->graph().parents(v);
  }
  std::size_t out_degree(graph::TaskId v) const {
    return p_->graph().out_degree(v);
  }
  std::size_t in_degree(graph::TaskId v) const {
    return p_->graph().in_degree(v);
  }
  double edge_data(graph::TaskId u, graph::TaskId v) const {
    return p_->graph().edge_data(u, v);
  }

  double exec_time(graph::TaskId v, platform::ProcId p) const {
    return p_->exec_time(v, p);
  }
  double comm_time_data(double data, platform::ProcId pu,
                        platform::ProcId pv) const {
    return p_->comm_time_data(data, pu, pv);
  }
  double mean_comm_data(double data) const { return p_->mean_comm_data(data); }
  double mean_cost(graph::TaskId v) const { return p_->costs().mean(v); }
  double stddev_cost(graph::TaskId v) const {
    return p_->costs().stddev_sample(v);
  }
  bool is_free_task(graph::TaskId v) const {
    const auto row = p_->costs().row(v);
    for (const double c : row) {
      if (c > 0.0) return false;
    }
    return true;
  }

  std::vector<graph::TaskId> topo_order() const {
    return graph::topological_order(p_->graph());
  }
  std::vector<graph::TaskId> entry_tasks() const {
    return p_->graph().entry_tasks();
  }
  std::vector<std::size_t> levels() const {
    return graph::precedence_levels(p_->graph());
  }

  const Problem& ready_base() const { return *p_; }

 private:
  const Problem* p_;
};

}  // namespace hdlts::sim
