// A schedule: the mapping of every task to a (processor, start, finish)
// triple, plus optional duplicate placements (entry-task duplication,
// paper Algorithm 1). Maintains per-processor timelines and answers the
// placement queries list schedulers need (end-of-queue and insertion-based).
//
// Incremental state: per-processor availability and the global makespan are
// maintained on every place()/place_duplicate(), so proc_available() and
// makespan() are O(1); a change log (state_version() / procs_changed_since())
// lets dynamic schedulers recompute only the EFT columns whose processor
// actually changed since they last looked.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hdlts/sim/problem.hpp"

namespace hdlts::sim {

struct Placement {
  graph::TaskId task = graph::kInvalidTask;
  platform::ProcId proc = platform::kInvalidProc;
  double start = 0.0;
  double finish = 0.0;
  bool duplicate = false;
};

class Schedule {
 public:
  explicit Schedule(std::size_t num_tasks, std::size_t num_procs);

  std::size_t num_tasks() const { return primary_.size(); }
  std::size_t num_procs() const { return timeline_.size(); }

  /// Clears all placements and incremental caches while keeping every
  /// vector's capacity, so a recycled Schedule (sched::Scheduler::
  /// schedule_into) reaches a zero-allocation steady state. Resizes when the
  /// dimensions differ from the previous use.
  void reset(std::size_t num_tasks, std::size_t num_procs);

  /// Records the primary execution of `task`. Throws InvalidArgument if the
  /// task is already placed or the interval overlaps the processor timeline.
  void place(graph::TaskId task, platform::ProcId proc, double start,
             double finish);

  /// Records a duplicate execution (redundant copy whose output children may
  /// consume). A task may have any number of duplicates but they may not
  /// overlap other work on the target processor.
  void place_duplicate(graph::TaskId task, platform::ProcId proc, double start,
                       double finish);

  /// Marks [start, finish) on `proc` as pre-occupied background load (the
  /// processor was not idle when scheduling began, e.g. a pre-occupied MEC
  /// lane). Busy blocks take part in overlap checks, proc_available() and
  /// earliest_start() exactly like placements — tasks cannot overlap them —
  /// but they are not task executions: they carry graph::kInvalidTask, are
  /// skipped by energy accounting, and do not advance the makespan.
  void place_busy(platform::ProcId proc, double start, double finish);

  bool is_placed(graph::TaskId task) const;
  /// Primary placement; throws InvalidArgument when not placed.
  const Placement& placement(graph::TaskId task) const;
  /// Duplicate placements of the task (possibly empty).
  std::span<const Placement> duplicates(graph::TaskId task) const;

  /// AFT of the task (primary placement finish), Definition 4.
  double finish_time(graph::TaskId task) const;

  /// Ready time of `v` on `proc` (Definition 5): max over parents of the
  /// earliest arrival of each parent's output on `proc`, taking the cheapest
  /// source among the parent's primary placement and all duplicates (comm = 0
  /// when a copy is on `proc` itself, Definition 2). All parents must already
  /// be placed. Entry tasks are ready at 0.
  double ready_time(const Problem& problem, graph::TaskId v,
                    platform::ProcId proc) const;
  /// Same computation against the compiled view (identical parent iteration
  /// order and communication arithmetic, hence identical bits).
  double ready_time(const CompiledProblem& problem, graph::TaskId v,
                    platform::ProcId proc) const;

  /// Chronological placements on a processor.
  std::span<const Placement> timeline(platform::ProcId proc) const;

  /// Time the processor becomes free after its last placement (Definition 3);
  /// 0 for an idle processor. O(1): the max finish per processor is
  /// maintained incrementally on every placement.
  double proc_available(platform::ProcId proc) const;

  /// Monotone counter: number of mutations (place/place_duplicate) so far.
  /// Reading it before a batch of placements and passing the saved value to
  /// procs_changed_since() yields exactly the processors touched in between.
  std::uint64_t state_version() const { return change_log_.size(); }

  /// Processors touched by mutations with version in (since, current], one
  /// entry per mutation in order (a processor may repeat). O(1), backed by
  /// the append-only change log.
  std::span<const platform::ProcId> procs_changed_since(
      std::uint64_t since) const;

  /// Earliest start >= ready for a block of `duration`. With insertion, idle
  /// gaps between existing placements are considered (HEFT-style insertion
  /// policy); otherwise the block goes after the last placement.
  double earliest_start(platform::ProcId proc, double ready, double duration,
                        bool insertion) const;

  /// Number of tasks with a primary placement.
  std::size_t num_placed() const { return num_placed_; }

  /// Overall completion time: max finish over all placements (equals
  /// AFT(v_exit) for a fully placed single-exit workflow, Definition 9).
  /// O(1): maintained incrementally; in particular a zero-duration pseudo
  /// task sorting last on a timeline while sitting inside an earlier block's
  /// interval cannot under-report the makespan.
  double makespan() const { return makespan_; }

  /// Full validation against the problem: every task placed, finish = start +
  /// W(v,p), no timeline overlap, every placement's start respects its data
  /// ready time, and only alive processors are used. Returns human-readable
  /// violations; empty means the schedule is valid.
  std::vector<std::string> validate(const Problem& problem) const;

 private:
  void insert_into_timeline(const Placement& pl, bool counts_for_makespan);

  std::vector<Placement> primary_;               // by task id
  std::vector<std::vector<Placement>> dup_;      // by task id
  std::vector<std::vector<Placement>> timeline_; // by proc id, sorted by start
  std::size_t num_placed_ = 0;
  // Incremental caches, updated by insert_into_timeline after validation.
  std::vector<double> avail_;                    // by proc id: max finish
  double makespan_ = 0.0;                        // max finish over everything
  std::vector<platform::ProcId> change_log_;     // proc of mutation i
};

}  // namespace hdlts::sim
