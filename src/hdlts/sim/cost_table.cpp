#include "hdlts/sim/cost_table.hpp"

#include <algorithm>

#include "hdlts/util/stats.hpp"

namespace hdlts::sim {

CostTable::CostTable(std::size_t num_tasks, std::size_t num_procs)
    : num_tasks_(num_tasks),
      num_procs_(num_procs),
      cost_(num_tasks * num_procs, 0.0) {
  if (num_procs == 0) throw InvalidArgument("cost table needs >= 1 processor");
}

void CostTable::set(graph::TaskId v, platform::ProcId p, double cost) {
  if (cost < 0.0) throw InvalidArgument("execution cost must be non-negative");
  cost_[index(v, p)] = cost;
}

std::span<const double> CostTable::row(graph::TaskId v) const {
  return {cost_.data() + index(v, 0), num_procs_};
}

double CostTable::mean(graph::TaskId v) const { return util::mean(row(v)); }

double CostTable::min(graph::TaskId v) const {
  const auto r = row(v);
  return *std::min_element(r.begin(), r.end());
}

double CostTable::stddev_sample(graph::TaskId v) const {
  return util::stddev_sample(row(v));
}

CostTable CostTable::from_speeds(const graph::TaskGraph& g,
                                 std::span<const double> speeds) {
  if (speeds.empty()) throw InvalidArgument("need >= 1 processor speed");
  for (const double s : speeds) {
    if (s <= 0.0) throw InvalidArgument("processor speeds must be positive");
  }
  CostTable table(g.num_tasks(), speeds.size());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    for (platform::ProcId p = 0; p < speeds.size(); ++p) {
      table.set(v, p, g.work(v) / speeds[p]);
    }
  }
  return table;
}

}  // namespace hdlts::sim
