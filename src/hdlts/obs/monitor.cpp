#include "hdlts/obs/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#ifdef __linux__
#include <unistd.h>
#endif

#include "hdlts/obs/quantile.hpp"
#include "hdlts/util/error.hpp"
#include "hdlts/util/json.hpp"

namespace hdlts::obs {

ProcessStats read_process_stats() {
  ProcessStats stats;
#ifdef __linux__
  const long page_bytes = sysconf(_SC_PAGESIZE);
  const long ticks_per_s = sysconf(_SC_CLK_TCK);
  {
    std::ifstream statm("/proc/self/statm");
    std::uint64_t size_pages = 0, rss_pages = 0;
    if (statm >> size_pages >> rss_pages) {
      stats.rss_mb = static_cast<double>(rss_pages) *
                     static_cast<double>(page_bytes) / (1024.0 * 1024.0);
      stats.valid = true;
    }
  }
  {
    // /proc/self/stat: the comm field may contain spaces but is wrapped in
    // parentheses — skip past the closing one, then utime/stime are fields
    // 14 and 15 (i.e. the 12th and 13th after the state character).
    std::ifstream stat("/proc/self/stat");
    std::string line;
    if (std::getline(stat, line)) {
      const auto close = line.rfind(')');
      if (close != std::string::npos) {
        std::istringstream rest(line.substr(close + 1));
        std::string state;
        rest >> state;
        std::uint64_t utime = 0, stime = 0;
        for (int field = 4; field <= 15; ++field) {
          if (field == 14) {
            rest >> utime;
          } else if (field == 15) {
            rest >> stime;
          } else {
            std::string skip;
            rest >> skip;
          }
        }
        if (rest && ticks_per_s > 0) {
          stats.cpu_seconds = static_cast<double>(utime + stime) /
                              static_cast<double>(ticks_per_s);
        }
      }
    }
  }
  {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind("Threads:", 0) == 0) {
        stats.threads = std::strtoull(line.c_str() + 8, nullptr, 10);
        break;
      }
    }
  }
#endif
  return stats;
}

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kPass: return "pass";
    case Verdict::kWarn: return "warn";
    case Verdict::kFail: return "fail";
  }
  return "fail";
}

RuntimeMonitor::RuntimeMonitor(MonitorOptions options)
    : options_(std::move(options)) {
  registry_ = options_.registry != nullptr ? options_.registry
                                           : &MetricRegistry::global();
  if (!options_.clock_ns) {
    options_.clock_ns = [] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  }
  if (!options_.process_stats) {
    options_.process_stats = read_process_stats;
  }
}

RuntimeMonitor::~RuntimeMonitor() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::int64_t RuntimeMonitor::now_ns() const { return options_.clock_ns(); }

void RuntimeMonitor::baseline() {
  std::lock_guard lock(mu_);
  if (baselined_) return;
  baselined_ = true;
  start_ns_ = now_ns();
  last_sample_ns_ = start_ns_;
  registry_->visit([this](const MetricView& view) {
    const std::string name(view.name);
    switch (view.kind) {
      case MetricView::Kind::kCounter: {
        const std::uint64_t v = view.counter->value();
        prev_counters_[name] = v;
        base_counters_[name] = v;
        break;
      }
      case MetricView::Kind::kHistogram: {
        HistogramState& state = prev_histograms_[name];
        state.buckets.resize(view.histogram->bounds().size() + 1);
        for (std::size_t i = 0; i < state.buckets.size(); ++i) {
          state.buckets[i] = view.histogram->bucket_count(i);
        }
        state.sum = view.histogram->sum();
        break;
      }
      case MetricView::Kind::kGauge:
        break;
    }
  });
  const ProcessStats stats = options_.process_stats();
  last_rss_mb_ = stats.rss_mb;
  last_cpu_seconds_ = stats.cpu_seconds;
  if (options_.rss_baseline_sample == 0) baseline_rss_mb_ = stats.rss_mb;
}

void RuntimeMonitor::start() {
  baseline();
  std::lock_guard lock(mu_);
  if (running_) throw InvalidArgument("RuntimeMonitor already started");
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { run_loop(); });
}

void RuntimeMonitor::run_loop() {
  auto next = std::chrono::steady_clock::now() + options_.period;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      if (wake_.wait_until(lock, next, [this] { return stop_; })) return;
    }
    sample_once();
    // Fixed cadence, but never schedule into the past if a sample ran long.
    next = std::max(next + options_.period,
                    std::chrono::steady_clock::now());
  }
}

void RuntimeMonitor::sample_once() {
  std::lock_guard lock(mu_);
  if (!baselined_) {
    throw InvalidArgument("RuntimeMonitor::sample_once before baseline()");
  }
  const std::int64_t t = now_ns();
  const double window_s =
      static_cast<double>(t - last_sample_ns_) / 1e9;
  const double t_s = static_cast<double>(t - start_ns_) / 1e9;

  struct CounterSample {
    std::string name;
    std::uint64_t total = 0;
    double rate = std::numeric_limits<double>::quiet_NaN();
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    double rate = 0.0;
    std::uint64_t window_count = 0;
    bool windowed = false;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  registry_->visit([&](const MetricView& view) {
    switch (view.kind) {
      case MetricView::Kind::kCounter: {
        CounterSample s;
        s.name = std::string(view.name);
        s.total = view.counter->value();
        const auto prev = prev_counters_.find(s.name);
        if (prev != prev_counters_.end() && window_s > 0.0) {
          s.rate = static_cast<double>(s.total - prev->second) / window_s;
        }
        counters.push_back(std::move(s));
        break;
      }
      case MetricView::Kind::kGauge:
        gauges.push_back({std::string(view.name), view.gauge->value()});
        break;
      case MetricView::Kind::kHistogram: {
        HistogramSample s;
        s.name = std::string(view.name);
        const Histogram& h = *view.histogram;
        const std::size_t n = h.bounds().size() + 1;
        std::vector<std::uint64_t> cur(n);
        std::uint64_t cur_count = 0;
        for (std::size_t i = 0; i < n; ++i) {
          cur[i] = h.bucket_count(i);
          cur_count += cur[i];
        }
        const double cur_sum = h.sum();
        const auto prev = prev_histograms_.find(s.name);
        std::vector<std::uint64_t> window(n, 0);
        double window_sum = cur_sum;
        if (prev != prev_histograms_.end() &&
            prev->second.buckets.size() == n) {
          for (std::size_t i = 0; i < n; ++i) {
            window[i] = cur[i] - prev->second.buckets[i];
            s.window_count += window[i];
          }
          window_sum = cur_sum - prev->second.sum;
        }
        // Percentiles over the window when it saw observations; over the
        // cumulative distribution otherwise (a quiet window still reports
        // where latency has been, flagged windowed=false).
        const std::vector<std::uint64_t>& src =
            s.window_count > 0 ? window : cur;
        const double src_sum = s.window_count > 0 ? window_sum : cur_sum;
        s.windowed = s.window_count > 0;
        s.p50 = quantile_from_buckets(h.bounds(), src, src_sum, 0.5);
        s.p95 = quantile_from_buckets(h.bounds(), src, src_sum, 0.95);
        s.p99 = quantile_from_buckets(h.bounds(), src, src_sum, 0.99);
        if (window_s > 0.0) {
          s.rate = static_cast<double>(s.window_count) / window_s;
        }
        histograms.push_back(std::move(s));
        // Roll the cumulative snapshot forward.
        HistogramState& state = prev_histograms_[histograms.back().name];
        state.buckets = std::move(cur);
        state.sum = cur_sum;
        break;
      }
    }
  });

  const ProcessStats stats = options_.process_stats();
  double cpu_pct = 0.0;
  if (window_s > 0.0 && stats.valid) {
    cpu_pct = (stats.cpu_seconds - last_cpu_seconds_) / window_s * 100.0;
  }

  ++num_samples_;
  if (num_samples_ == options_.rss_baseline_sample && stats.valid) {
    baseline_rss_mb_ = stats.rss_mb;
  }
  last_rss_mb_ = stats.rss_mb;
  last_cpu_seconds_ = stats.cpu_seconds;
  last_sample_ns_ = t;
  for (const CounterSample& s : counters) prev_counters_[s.name] = s.total;

  // Per-sample (window) gate verdicts — advisory; the run verdict comes from
  // report()'s whole-run aggregates.
  std::vector<GateResult> gate_results;
  gate_results.reserve(options_.gates.size());
  for (const SloGate& gate : options_.gates) {
    double observed = 0.0;
    switch (gate.kind) {
      case SloKind::kMinCounterRate:
        for (const CounterSample& s : counters) {
          if (s.name == gate.metric && !std::isnan(s.rate)) {
            observed = s.rate;
          }
        }
        break;
      case SloKind::kMaxHistogramP99:
        for (const HistogramSample& s : histograms) {
          if (s.name == gate.metric && !std::isnan(s.p99)) observed = s.p99;
        }
        break;
      case SloKind::kMaxRssGrowth:
        observed = baseline_rss_mb_ > 0.0 ? stats.rss_mb / baseline_rss_mb_
                                          : 1.0;
        break;
      case SloKind::kMaxCounterTotal:
        for (const CounterSample& s : counters) {
          if (s.name == gate.metric) observed = static_cast<double>(s.total);
        }
        break;
    }
    gate_results.push_back(evaluate_gate(gate, observed));
  }

  if (options_.timeline != nullptr) {
    std::ostringstream os;
    os << "{\"sample\":" << num_samples_ << ",\"t_s\":";
    util::write_json_number(os, t_s);
    os << ",\"window_s\":";
    util::write_json_number(os, window_s);
    os << ",\"rss_mb\":";
    util::write_json_number(os, stats.rss_mb);
    os << ",\"cpu_pct\":";
    util::write_json_number(os, cpu_pct);
    os << ",\"threads\":" << stats.threads;
    os << ",\"counters\":{";
    for (std::size_t i = 0; i < counters.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << util::json_escape(counters[i].name)
         << "\":" << counters[i].total;
    }
    os << "},\"rates\":{";
    bool first = true;
    for (const CounterSample& s : counters) {
      if (std::isnan(s.rate)) continue;
      if (!first) os << ",";
      first = false;
      os << "\"" << util::json_escape(s.name) << "\":";
      util::write_json_number(os, s.rate);
    }
    os << "},\"gauges\":{";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << util::json_escape(gauges[i].name) << "\":";
      util::write_json_number(os, gauges[i].value);
    }
    os << "},\"histograms\":{";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
      const HistogramSample& s = histograms[i];
      if (i > 0) os << ",";
      os << "\"" << util::json_escape(s.name) << "\":{\"p50\":";
      util::write_json_number(os, s.p50);
      os << ",\"p95\":";
      util::write_json_number(os, s.p95);
      os << ",\"p99\":";
      util::write_json_number(os, s.p99);
      os << ",\"rate\":";
      util::write_json_number(os, s.rate);
      os << ",\"window_count\":" << s.window_count
         << ",\"windowed\":" << (s.windowed ? "true" : "false") << "}";
    }
    os << "},\"gates\":[";
    for (std::size_t i = 0; i < gate_results.size(); ++i) {
      const GateResult& g = gate_results[i];
      if (i > 0) os << ",";
      os << "{\"label\":\"" << util::json_escape(g.gate.label)
         << "\",\"observed\":";
      util::write_json_number(os, g.observed);
      os << ",\"bound\":";
      util::write_json_number(os, g.gate.bound);
      os << ",\"verdict\":\"" << verdict_name(g.verdict) << "\"}";
    }
    os << "]}\n";
    *options_.timeline << os.str() << std::flush;
  }
}

GateResult RuntimeMonitor::evaluate_gate(const SloGate& gate,
                                         double observed) const {
  GateResult result;
  result.gate = gate;
  result.observed = observed;
  const bool is_min = gate.kind == SloKind::kMinCounterRate;
  if (is_min) {
    if (observed < gate.bound) {
      result.verdict = Verdict::kFail;
    } else if (observed < gate.bound * (1.0 + options_.warn_margin)) {
      result.verdict = Verdict::kWarn;
    }
  } else {
    if (observed > gate.bound) {
      result.verdict = Verdict::kFail;
    } else if (observed > gate.bound * (1.0 - options_.warn_margin)) {
      result.verdict = Verdict::kWarn;
    }
  }
  std::ostringstream detail;
  detail << gate.label << ": observed " << observed << " vs "
         << (is_min ? "floor " : "ceiling ") << gate.bound << " -> "
         << verdict_name(result.verdict);
  result.detail = detail.str();
  return result;
}

MonitorReport RuntimeMonitor::report_locked() const {
  MonitorReport report;
  report.samples = num_samples_;
  report.elapsed_s =
      static_cast<double>(last_sample_ns_ - start_ns_) / 1e9;
  for (const SloGate& gate : options_.gates) {
    double observed = 0.0;
    bool found = true;
    switch (gate.kind) {
      case SloKind::kMinCounterRate: {
        const auto base = base_counters_.find(gate.metric);
        const auto cur = prev_counters_.find(gate.metric);
        const std::uint64_t base_v =
            base != base_counters_.end() ? base->second : 0;
        if (cur != prev_counters_.end() && report.elapsed_s > 0.0) {
          observed = static_cast<double>(cur->second - base_v) /
                     report.elapsed_s;
        } else {
          found = cur != prev_counters_.end();
        }
        break;
      }
      case SloKind::kMaxHistogramP99: {
        found = false;
        registry_->visit([&](const MetricView& view) {
          if (view.kind == MetricView::Kind::kHistogram &&
              view.name == gate.metric) {
            observed = histogram_quantile(*view.histogram, 0.99);
            found = !std::isnan(observed);
          }
        });
        break;
      }
      case SloKind::kMaxRssGrowth:
        observed = baseline_rss_mb_ > 0.0 ? last_rss_mb_ / baseline_rss_mb_
                                          : 1.0;
        break;
      case SloKind::kMaxCounterTotal: {
        const auto cur = prev_counters_.find(gate.metric);
        found = cur != prev_counters_.end();
        if (found) observed = static_cast<double>(cur->second);
        break;
      }
    }
    GateResult result = evaluate_gate(gate, observed);
    if (!found) {
      // A gate over a metric the run never touched cannot pass silently —
      // that would let a typo in a config key disable an SLO.
      result.verdict = Verdict::kFail;
      result.detail = gate.label + ": metric '" + gate.metric +
                      "' never observed -> fail";
    }
    if (static_cast<int>(result.verdict) >
        static_cast<int>(report.verdict)) {
      report.verdict = result.verdict;
    }
    report.gates.push_back(std::move(result));
  }
  return report;
}

MonitorReport RuntimeMonitor::report() const {
  std::lock_guard lock(mu_);
  return report_locked();
}

MonitorReport RuntimeMonitor::finish() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard lock(mu_);
    running_ = false;
  }
  sample_once();
  return report();
}

std::size_t RuntimeMonitor::samples() const {
  std::lock_guard lock(mu_);
  return num_samples_;
}

}  // namespace hdlts::obs
