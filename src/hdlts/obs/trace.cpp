#include "hdlts/obs/trace.hpp"

#include "hdlts/sim/schedule.hpp"

namespace hdlts::obs {

void RecordingTrace::on_begin(const ScheduleBeginEvent& ev) {
  const std::lock_guard<std::mutex> lock(mu_);
  scheduler_.assign(ev.scheduler.begin(), ev.scheduler.end());
  num_tasks_ = ev.num_tasks;
  num_procs_ = ev.num_procs;
}

void RecordingTrace::on_step(const StepEvent& ev) {
  const std::lock_guard<std::mutex> lock(mu_);
  StepRecord r;
  r.step = ev.step;
  r.itq_tasks.assign(ev.itq_tasks.begin(), ev.itq_tasks.end());
  r.itq_pv.assign(ev.itq_pv.begin(), ev.itq_pv.end());
  r.selected = ev.selected;
  r.eft.assign(ev.eft.begin(), ev.eft.end());
  r.chosen = ev.chosen;
  r.start = ev.start;
  r.finish = ev.finish;
  steps_.push_back(std::move(r));
}

void RecordingTrace::on_duplication(const DuplicationEvent& ev) {
  const std::lock_guard<std::mutex> lock(mu_);
  duplications_.push_back(ev);
}

void RecordingTrace::on_placement(const PlacementEvent& ev) {
  const std::lock_guard<std::mutex> lock(mu_);
  placements_.push_back(ev);
}

void RecordingTrace::on_note(std::string_view kind, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  notes_.push_back(NoteRecord{std::string(kind), value});
}

void RecordingTrace::on_end(const ScheduleEndEvent& ev) {
  const std::lock_guard<std::mutex> lock(mu_);
  end_ = ev;
  has_end_ = true;
}

void RecordingTrace::reserve(std::size_t steps_hint) {
  const std::lock_guard<std::mutex> lock(mu_);
  steps_.reserve(steps_hint);
  placements_.reserve(steps_hint);
}

void RecordingTrace::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  scheduler_.clear();
  num_tasks_ = 0;
  num_procs_ = 0;
  steps_.clear();
  duplications_.clear();
  placements_.clear();
  notes_.clear();
  end_ = ScheduleEndEvent{};
  has_end_ = false;
}

std::string RecordingTrace::scheduler() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return scheduler_;
}

std::size_t RecordingTrace::num_tasks() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return num_tasks_;
}

std::size_t RecordingTrace::num_procs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return num_procs_;
}

void emit_schedule(DecisionTrace* sink, std::string_view scheduler,
                   const sim::Schedule& schedule) {
  if (sink == nullptr) return;
  sink->on_begin(
      {scheduler, schedule.num_tasks(), schedule.num_procs()});
  std::size_t duplicates = 0;
  for (platform::ProcId p = 0; p < schedule.num_procs(); ++p) {
    for (const sim::Placement& pl : schedule.timeline(p)) {
      if (pl.duplicate) ++duplicates;
      sink->on_placement({pl.task, pl.proc, pl.start, pl.finish,
                          pl.duplicate});
    }
  }
  ScheduleEndEvent end;
  end.makespan = schedule.makespan();
  end.steps = schedule.num_placed();
  end.duplicates = duplicates;
  sink->on_end(end);
}

}  // namespace hdlts::obs
