#include "hdlts/obs/prometheus.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "hdlts/obs/metrics.hpp"

namespace hdlts::obs {
namespace {

// Prometheus sample values: decimal floats, with the literals NaN/+Inf/-Inf
// (unlike JSON, the format has them). %.17g round-trips every double.
void write_prom_value(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
    return;
  }
  if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

bool valid_name_char(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

void write_help_type(std::ostream& os, const std::string& prom_name,
                     std::string_view kind, std::string_view raw_name) {
  // HELP text: escape backslash and newline per the exposition format.
  os << "# HELP " << prom_name << " hdlts " << kind << " ";
  for (char c : raw_name) {
    if (c == '\\') {
      os << "\\\\";
    } else if (c == '\n') {
      os << "\\n";
    } else {
      os << c;
    }
  }
  os << "\n# TYPE " << prom_name << " " << kind << "\n";
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    out.push_back(valid_name_char(c, /*first=*/false) ? c : '_');
  }
  // Digits are valid anywhere except first; keep a leading one by prefixing.
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void prometheus_render(const MetricRegistry& registry, std::ostream& os) {
  registry.visit([&os](const MetricView& view) {
    const std::string base = prometheus_name(view.name);
    switch (view.kind) {
      case MetricView::Kind::kCounter: {
        const std::string name = base + "_total";
        write_help_type(os, name, "counter", view.name);
        os << name << " " << view.counter->value() << "\n";
        break;
      }
      case MetricView::Kind::kGauge: {
        write_help_type(os, base, "gauge", view.name);
        os << base << " ";
        write_prom_value(os, view.gauge->value());
        os << "\n";
        break;
      }
      case MetricView::Kind::kHistogram: {
        const Histogram& h = *view.histogram;
        write_help_type(os, base, "histogram", view.name);
        // Registry buckets are disjoint; Prometheus buckets are cumulative.
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cum += h.bucket_count(i);
          os << base << "_bucket{le=\"";
          write_prom_value(os, h.bounds()[i]);
          os << "\"} " << cum << "\n";
        }
        cum += h.bucket_count(h.bounds().size());
        os << base << "_bucket{le=\"+Inf\"} " << cum << "\n";
        os << base << "_sum ";
        write_prom_value(os, h.sum());
        os << "\n" << base << "_count " << h.count() << "\n";
        break;
      }
    }
  });
}

}  // namespace hdlts::obs
