#include "hdlts/obs/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "hdlts/obs/metrics.hpp"
#include "hdlts/util/error.hpp"

namespace hdlts::obs {

double quantile_from_buckets(std::span<const double> bounds,
                             std::span<const std::uint64_t> buckets,
                             double sum, double q) {
  HDLTS_EXPECTS(buckets.size() == bounds.size() + 1);
  HDLTS_EXPECTS(q >= 0.0 && q <= 1.0);
  std::uint64_t count = 0;
  std::size_t occupied = 0;
  std::size_t only = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    count += buckets[i];
    if (buckets[i] > 0) {
      ++occupied;
      only = i;
    }
  }
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();

  const auto lower_edge = [&](std::size_t i) {
    // Bucket 0 conventionally starts at 0 (latencies, sizes); when the first
    // bound is itself negative the edge opens downward instead.
    if (i == 0) return std::min(0.0, bounds.front());
    return bounds[i - 1];
  };

  if (occupied == 1) {
    // Every observation in one bucket: the mean is the best estimator and is
    // exact for point-mass distributions. Clamp to the bucket in case NaN
    // observations (excluded from sum, counted in overflow) skewed it.
    const double mean = sum / static_cast<double>(count);
    const double lo = lower_edge(only);
    const double hi = only == bounds.size()
                          ? std::numeric_limits<double>::infinity()
                          : bounds[only];
    if (std::isnan(mean)) return bounds.back();
    return std::clamp(mean, lo, hi);
  }

  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t prev = cum;
    cum += buckets[i];
    if (static_cast<double>(cum) < rank || buckets[i] == 0) continue;
    if (i == bounds.size()) return bounds.back();  // overflow: last bound
    const double lo = lower_edge(i);
    const double hi = bounds[i];
    const double pos =
        (rank - static_cast<double>(prev)) / static_cast<double>(buckets[i]);
    return lo + (hi - lo) * std::clamp(pos, 0.0, 1.0);
  }
  return bounds.back();  // q == 1 with trailing empty buckets
}

double histogram_quantile(const Histogram& histogram, double q) {
  const std::span<const double> bounds = histogram.bounds();
  std::vector<std::uint64_t> buckets(bounds.size() + 1);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] = histogram.bucket_count(i);
  }
  return quantile_from_buckets(bounds, buckets, histogram.sum(), q);
}

}  // namespace hdlts::obs
