#include "hdlts/obs/metrics.hpp"

#include <cmath>
#include <ostream>

#include "hdlts/obs/quantile.hpp"
#include "hdlts/util/error.hpp"
#include "hdlts/util/json.hpp"

namespace hdlts::obs {

void Gauge::record_max(double v) {
  double cur = v_.load(std::memory_order_relaxed);
  while (v > cur &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw InvalidArgument("histogram needs >= 1 bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw InvalidArgument("histogram bounds must be strictly ascending");
    }
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double x) {
  count_.fetch_add(1, std::memory_order_relaxed);
  std::size_t bucket = bounds_.size();  // overflow (also where NaN lands)
  if (!std::isnan(x)) {
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (x <= bounds_[i]) {
        bucket = i;
        break;
      }
    }
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + x,
                                       std::memory_order_relaxed)) {
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  HDLTS_EXPECTS(i <= bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

MetricRegistry::Entry& MetricRegistry::find_or_create(std::string_view name,
                                                      Kind kind) {
  for (Entry& e : entries_) {
    if (e.name == name) {
      if (e.kind != kind) {
        throw InvalidArgument("metric '" + e.name +
                              "' already registered as a different kind");
      }
      return e;
    }
  }
  entries_.push_back(Entry{std::string(name), kind, nullptr, nullptr, nullptr});
  return entries_.back();
}

Counter& MetricRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_create(name, Kind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_create(name, Kind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::span<const double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_create(name, Kind::kHistogram);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(
        std::vector<double>(bounds.begin(), bounds.end()));
  }
  return *e.histogram;
}

std::size_t MetricRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricRegistry::visit(
    const std::function<void(const MetricView&)>& fn) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    MetricView view;
    view.name = e.name;
    switch (e.kind) {
      case Kind::kCounter:
        view.kind = MetricView::Kind::kCounter;
        view.counter = e.counter.get();
        break;
      case Kind::kGauge:
        view.kind = MetricView::Kind::kGauge;
        view.gauge = e.gauge.get();
        break;
      case Kind::kHistogram:
        view.kind = MetricView::Kind::kHistogram;
        view.histogram = e.histogram.get();
        break;
    }
    fn(view);
  }
}

void MetricRegistry::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{";
  const char* kind_names[] = {"counters", "gauges", "histograms"};
  const Kind kinds[] = {Kind::kCounter, Kind::kGauge, Kind::kHistogram};
  for (std::size_t k = 0; k < 3; ++k) {
    if (k > 0) os << ",";
    os << "\"" << kind_names[k] << "\":{";
    bool first = true;
    for (const Entry& e : entries_) {
      if (e.kind != kinds[k]) continue;
      if (!first) os << ",";
      first = false;
      os << "\"" << util::json_escape(e.name) << "\":";
      switch (e.kind) {
        case Kind::kCounter:
          os << e.counter->value();
          break;
        case Kind::kGauge:
          util::write_json_number(os, e.gauge->value());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *e.histogram;
          os << "{\"count\":" << h.count() << ",\"sum\":";
          util::write_json_number(os, h.sum());
          os << ",\"bounds\":[";
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            if (i > 0) os << ",";
            util::write_json_number(os, h.bounds()[i]);
          }
          os << "],\"buckets\":[";
          for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
            if (i > 0) os << ",";
            os << h.bucket_count(i);
          }
          os << "]";
          // Quantile estimates (obs/quantile.hpp): NaN while empty -> null.
          const char* quantile_keys[] = {"p50", "p95", "p99"};
          const double qs[] = {0.5, 0.95, 0.99};
          for (std::size_t q = 0; q < 3; ++q) {
            os << ",\"" << quantile_keys[q] << "\":";
            util::write_json_number(os, histogram_quantile(h, qs[q]));
          }
          os << "}";
          break;
        }
      }
    }
    os << "}";
  }
  os << "}";
}

void MetricRegistry::reset_values() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

}  // namespace hdlts::obs
