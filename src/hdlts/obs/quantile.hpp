// Quantile estimation over fixed-bucket histograms — the shared math behind
// the RuntimeMonitor's p50/p95/p99 timeline columns, the percentile fields in
// the --counters-out JSON dump, and the SLO latency gates.
//
// The estimator follows the Prometheus histogram_quantile convention (linear
// interpolation inside the bucket that contains the target rank, last finite
// bound for ranks landing in the overflow bucket) with one refinement: when
// every observation fell into a SINGLE bucket, the estimate is the bucket
// mean (sum / count) clamped to the bucket's edges. For a point-mass
// distribution — the same value observed N times — that makes every quantile
// exact instead of an interpolated guess (pinned by tests/obs_test.cpp).
//
// NaN observations are counted in the overflow bucket but excluded from the
// sum (Histogram's contract), so a NaN-polluted histogram skews the overflow
// estimate; it cannot poison the finite buckets.
#pragma once

#include <cstdint>
#include <span>

namespace hdlts::obs {

class Histogram;

/// Quantile estimate from raw bucket data. `bounds` are the strictly
/// ascending upper bounds; `buckets` has bounds.size() + 1 entries, the last
/// being the overflow bucket; `sum` is the sum of all (finite) observations.
/// `q` must lie in [0, 1]. Returns NaN when the buckets are empty.
double quantile_from_buckets(std::span<const double> bounds,
                             std::span<const std::uint64_t> buckets,
                             double sum, double q);

/// Quantile estimate over a live histogram's cumulative contents.
double histogram_quantile(const Histogram& histogram, double q);

}  // namespace hdlts::obs
