#include "hdlts/obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "hdlts/graph/task_graph.hpp"
#include "hdlts/sim/schedule.hpp"
#include "hdlts/util/json.hpp"

namespace hdlts::obs {

namespace {

// One pre-rendered trace event: everything after "ts" is carried verbatim in
// `payload`, so the emitter only has to sort by (pid, tid, ts) and stream.
struct TraceEvent {
  int pid = 0;
  std::int64_t tid = 0;
  double ts = 0.0;  // µs
  std::string payload;
};

constexpr int kWallPid = 1;
constexpr int kSimPid = 2;
constexpr std::int64_t kDecisionTid = 0;  // sim lane 0; procs are tid p + 1

std::string task_label(const graph::TaskGraph* graph, graph::TaskId task) {
  if (graph != nullptr && graph->contains(task) &&
      !graph->name(task).empty()) {
    return graph->name(task);
  }
  return "T" + std::to_string(task);
}

void append_complete(std::vector<TraceEvent>& out, int pid, std::int64_t tid,
                     double ts_us, double dur_us, const std::string& name,
                     const std::string& args_json) {
  TraceEvent ev;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = ts_us;
  ev.payload = ",\"dur\":" + util::json_number(dur_us) +
               ",\"ph\":\"X\",\"name\":\"" + util::json_escape(name) + "\"";
  if (!args_json.empty()) ev.payload += ",\"args\":{" + args_json + "}";
  out.push_back(std::move(ev));
}

void append_instant(std::vector<TraceEvent>& out, int pid, std::int64_t tid,
                    double ts_us, const std::string& name,
                    const std::string& args_json) {
  TraceEvent ev;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = ts_us;
  ev.payload = ",\"ph\":\"i\",\"s\":\"t\",\"name\":\"" +
               util::json_escape(name) + "\"";
  if (!args_json.empty()) ev.payload += ",\"args\":{" + args_json + "}";
  out.push_back(std::move(ev));
}

void append_metadata(std::vector<TraceEvent>& out, int pid, std::int64_t tid,
                     const char* what, const std::string& name,
                     double sort_index) {
  // Metadata events carry ts 0 and sort before real events in their lane.
  TraceEvent ev;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = -1.0;
  ev.payload = ",\"ph\":\"M\",\"name\":\"";
  ev.payload += what;
  ev.payload += "\",\"args\":{\"name\":\"" + util::json_escape(name) + "\"";
  if (sort_index >= 0.0) {
    ev.payload += ",\"sort_index\":" + util::json_number(sort_index);
  }
  ev.payload += "}";
  out.push_back(std::move(ev));
}

std::string joined_numbers(std::span<const double> xs) {
  std::string s;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) s += ",";
    s += util::json_number(xs[i]);
  }
  return s;
}

void collect_sim_events(std::vector<TraceEvent>& events,
                        const sim::Schedule* schedule,
                        const RecordingTrace* decisions,
                        const ChromeTraceOptions& options) {
  const double scale = options.sim_scale;
  std::size_t num_procs = 0;

  if (schedule != nullptr) {
    num_procs = schedule->num_procs();
    for (platform::ProcId p = 0; p < schedule->num_procs(); ++p) {
      for (const sim::Placement& pl : schedule->timeline(p)) {
        std::string args = "\"task\":" + std::to_string(pl.task) +
                           ",\"start\":" + util::json_number(pl.start) +
                           ",\"finish\":" + util::json_number(pl.finish);
        std::string name = task_label(options.graph, pl.task);
        if (pl.duplicate) {
          name += " (dup)";
          args += ",\"duplicate\":true";
        }
        append_complete(events, kSimPid, static_cast<std::int64_t>(p) + 1,
                        pl.start * scale, (pl.finish - pl.start) * scale, name,
                        args);
      }
    }
  } else if (decisions != nullptr) {
    // No Schedule object (online/stream): rebuild processor lanes from the
    // recorded placement events.
    for (const PlacementEvent& pl : decisions->placements()) {
      if (pl.proc != platform::kInvalidProc) {
        num_procs = std::max(num_procs, static_cast<std::size_t>(pl.proc) + 1);
      }
      std::string args = "\"task\":" + std::to_string(pl.task) +
                         ",\"start\":" + util::json_number(pl.start) +
                         ",\"finish\":" + util::json_number(pl.finish);
      std::string name = task_label(options.graph, pl.task);
      if (pl.duplicate) {
        name += " (dup)";
        args += ",\"duplicate\":true";
      }
      append_complete(events, kSimPid, static_cast<std::int64_t>(pl.proc) + 1,
                      pl.start * scale, (pl.finish - pl.start) * scale, name,
                      args);
    }
  }

  if (decisions != nullptr) {
    if (decisions->num_procs() > 0) {
      num_procs = std::max(num_procs, decisions->num_procs());
    }
    for (const RecordingTrace::StepRecord& st : decisions->steps()) {
      std::string args = "\"step\":" + std::to_string(st.step) +
                         ",\"selected\":" + std::to_string(st.selected) +
                         ",\"itq_size\":" + std::to_string(st.itq_tasks.size());
      if (st.chosen != platform::kInvalidProc) {
        args += ",\"chosen\":" + std::to_string(st.chosen);
      }
      if (!st.eft.empty()) {
        args += ",\"eft\":[" +
                joined_numbers({st.eft.data(), st.eft.size()}) + "]";
      }
      if (!st.itq_pv.empty()) {
        args += ",\"itq_pv\":[" +
                joined_numbers({st.itq_pv.data(), st.itq_pv.size()}) + "]";
      }
      append_instant(events, kSimPid, kDecisionTid, st.start * scale,
                     "select " + task_label(options.graph, st.selected), args);
    }
    for (const DuplicationEvent& d : decisions->duplications()) {
      std::string args =
          "\"task\":" + std::to_string(d.task) +
          ",\"candidate_proc\":" + std::to_string(d.candidate_proc) +
          ",\"dup_finish\":" + util::json_number(d.dup_finish) +
          ",\"best_arrival\":" + util::json_number(d.best_arrival) +
          ",\"benefits\":" + std::to_string(d.benefits) +
          ",\"accepted\":" + (d.accepted ? "true" : "false");
      append_instant(events, kSimPid, kDecisionTid, d.dup_start * scale,
                     std::string(d.accepted ? "dup accept " : "dup reject ") +
                         task_label(options.graph, d.task),
                     args);
    }
    for (const RecordingTrace::NoteRecord& n : decisions->notes()) {
      append_instant(events, kSimPid, kDecisionTid, n.value * scale, n.kind,
                     "\"value\":" + util::json_number(n.value));
    }
  }

  if (num_procs > 0 || decisions != nullptr) {
    append_metadata(events, kSimPid, 0, "process_name", "simulated schedule",
                    -1.0);
    append_metadata(events, kSimPid, 0, "process_sort_index", "", 2);
    if (decisions != nullptr) {
      append_metadata(events, kSimPid, kDecisionTid, "thread_name",
                      "decisions", -1.0);
    }
    for (std::size_t p = 0; p < num_procs; ++p) {
      append_metadata(events, kSimPid, static_cast<std::int64_t>(p) + 1,
                      "thread_name", "P" + std::to_string(p + 1), -1.0);
    }
  }
}

void collect_wall_events(std::vector<TraceEvent>& events,
                         const SpanLog* spans) {
  if (spans == nullptr) return;
  const std::vector<SpanEvent> log = spans->snapshot();
  if (log.empty()) return;
  append_metadata(events, kWallPid, 0, "process_name",
                  "scheduler (wall clock)", -1.0);
  append_metadata(events, kWallPid, 0, "process_sort_index", "", 1);
  std::vector<std::int64_t> named_tids;
  for (const SpanEvent& sp : log) {
    const auto tid = static_cast<std::int64_t>(sp.tid);
    if (std::find(named_tids.begin(), named_tids.end(), tid) ==
        named_tids.end()) {
      named_tids.push_back(tid);
      append_metadata(events, kWallPid, tid, "thread_name",
                      "thread " + std::to_string(sp.tid), -1.0);
    }
    append_complete(events, kWallPid, tid,
                    static_cast<double>(sp.start_ns) / 1000.0,
                    static_cast<double>(sp.dur_ns) / 1000.0,
                    sp.name != nullptr ? sp.name : "span",
                    "\"depth\":" + std::to_string(sp.depth));
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const sim::Schedule* schedule,
                        const RecordingTrace* decisions, const SpanLog* spans,
                        const ChromeTraceOptions& options) {
  std::vector<TraceEvent> events;
  collect_wall_events(events, spans);
  collect_sim_events(events, schedule, decisions, options);

  // Stable-sort per lane by ts so every lane reads monotonically; metadata
  // (ts -1) floats to each lane's front. Clamp after sorting.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts < b.ts;
                   });

  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) os << ",";
    first = false;
    const double ts = std::max(ev.ts, 0.0);
    os << "\n{\"pid\":" << ev.pid << ",\"tid\":" << ev.tid << ",\"ts\":";
    util::write_json_number(os, ts);
    os << ev.payload << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_counters_json(std::ostream& os, const MetricRegistry& registry) {
  registry.write_json(os);
}

}  // namespace hdlts::obs
