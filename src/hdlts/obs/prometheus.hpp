// Prometheus text exposition (version 0.0.4) for the MetricRegistry, so a
// run's final counters can be scraped or pushed without bespoke tooling:
//
//   # HELP hdlts_schedule_calls_total hdlts counter hdlts.schedule_calls
//   # TYPE hdlts_schedule_calls_total counter
//   hdlts_schedule_calls_total 42
//
// Mapping rules (docs/OBSERVABILITY.md):
//  * Registry names are dotted ("svc.batch.completed"); Prometheus metric
//    names must match [a-zA-Z_:][a-zA-Z0-9_:]*, so every invalid character
//    becomes '_' and a leading digit gains a '_' prefix.
//  * Counters gain the conventional "_total" suffix; gauges are rendered
//    verbatim; histograms become the classic triplet: cumulative
//    <name>_bucket{le="..."} series ending with le="+Inf", then <name>_sum
//    and <name>_count.
//  * Values use shortest-round-trip formatting; non-finite values render as
//    the Prometheus literals "NaN", "+Inf", "-Inf".
//
// scripts/check_prom_format.py validates the grammar in CI; workflow_tool
// --prom-out and stress_tool prom=<path> write it to disk.
#pragma once

#include <iosfwd>
#include <string>

namespace hdlts::obs {

class MetricRegistry;

/// Converts a registry metric name into a valid Prometheus metric name
/// (without any kind-specific suffix).
std::string prometheus_name(std::string_view name);

/// Renders every instrument in `registry` (registration order) in the
/// Prometheus text exposition format, ending with a trailing newline.
void prometheus_render(const MetricRegistry& registry, std::ostream& os);

}  // namespace hdlts::obs
