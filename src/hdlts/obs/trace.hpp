// Per-decision trace sink: the structured-event interface the schedulers
// emit into (sched::Scheduler::set_trace_sink).
//
// Event vocabulary (one HDLTS run, mirroring the paper's Table I):
//   on_begin        scheduler name + problem shape
//   on_step         ITQ snapshot (tasks + PVs), the selected task, its
//                   per-CPU EFT candidate row, and the chosen processor
//   on_duplication  one Algorithm-1 candidate: duplicate finish vs the
//                   earliest networked arrival at any child, the benefiting
//                   child count, and the accept/reject verdict
//   on_placement    a committed block (primary or duplicate)
//   on_note         generic scalar event (online failures, stream arrivals)
//   on_end          makespan + high-water marks (peak ITQ width, scratch
//                   arena bytes)
// List baselines without an ITQ emit on_step with empty ITQ spans.
//
// Spans handed to on_step point into scheduler-internal storage and are only
// valid for the duration of the call — sinks that retain events must copy
// (RecordingTrace does).
//
// The hot compiled path is a template over a compile-time sink policy
// (NullSink / SinkRef below): with NullSink every telemetry block is removed
// by `if constexpr`, so a scheduler without a sink attached runs the exact
// pre-telemetry instruction stream — zero-allocation steady state and
// bit-identical schedules (tests/alloc_test.cpp, tests/obs_test.cpp).
#pragma once

#include <cstddef>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hdlts/graph/task_graph.hpp"
#include "hdlts/platform/platform.hpp"

namespace hdlts::sim {
class Schedule;
}

namespace hdlts::obs {

struct ScheduleBeginEvent {
  std::string_view scheduler;
  std::size_t num_tasks = 0;
  std::size_t num_procs = 0;
};

struct StepEvent {
  std::size_t step = 0;  ///< 0-based decision index
  /// ITQ snapshot at selection time, queue order (unsorted), PVs parallel.
  std::span<const graph::TaskId> itq_tasks;
  std::span<const double> itq_pv;
  graph::TaskId selected = graph::kInvalidTask;
  /// EFT candidates of `selected` per alive processor (problem.procs()
  /// order) — the row whose argmin is the chosen processor.
  std::span<const double> eft;
  platform::ProcId chosen = platform::kInvalidProc;
  double start = 0.0;   ///< committed start on `chosen`
  double finish = 0.0;  ///< committed finish (the winning EFT)
};

/// One Algorithm-1 duplication candidate and its verdict. The comparison the
/// paper writes as "EFT(dup) < AFT(v) + comm" is recorded term by term.
struct DuplicationEvent {
  graph::TaskId task = graph::kInvalidTask;
  platform::ProcId primary_proc = platform::kInvalidProc;
  platform::ProcId candidate_proc = platform::kInvalidProc;
  double dup_start = 0.0;
  double dup_finish = 0.0;
  /// Earliest networked arrival of the task's output at any child were the
  /// duplicate absent (min over children of AFT + comm).
  double best_arrival = 0.0;
  std::size_t benefits = 0;      ///< children with dup_finish < their arrival
  std::size_t num_children = 0;
  bool accepted = false;
};

struct PlacementEvent {
  graph::TaskId task = graph::kInvalidTask;
  platform::ProcId proc = platform::kInvalidProc;
  double start = 0.0;
  double finish = 0.0;
  bool duplicate = false;
};

struct ScheduleEndEvent {
  double makespan = 0.0;
  std::size_t steps = 0;
  std::size_t itq_high_water = 0;  ///< peak ITQ width (0 for non-ITQ)
  std::size_t arena_bytes = 0;     ///< scratch-arena bytes carved this call
  std::size_t duplicates = 0;      ///< duplicate placements committed
};

class DecisionTrace {
 public:
  virtual ~DecisionTrace() = default;
  virtual void on_begin(const ScheduleBeginEvent&) {}
  virtual void on_step(const StepEvent&) {}
  virtual void on_duplication(const DuplicationEvent&) {}
  virtual void on_placement(const PlacementEvent&) {}
  virtual void on_note(std::string_view /*kind*/, double /*value*/) {}
  virtual void on_end(const ScheduleEndEvent&) {}
};

/// Compile-time sink policies for the templated hot loops. Call sites guard
/// every telemetry block with `if constexpr (Sink::kEnabled)`.
struct NullSink {
  static constexpr bool kEnabled = false;
  /// Never called (removed by if constexpr); present so unguarded cold-path
  /// helpers can take either policy.
  DecisionTrace* operator->() const { return nullptr; }
};

struct SinkRef {
  static constexpr bool kEnabled = true;
  DecisionTrace* sink = nullptr;
  DecisionTrace* operator->() const { return sink; }
};

/// An in-memory sink that copies every event. Thread-safe (one mutex), so it
/// can be shared across metrics::run_repetitions workers; an enabled
/// recording sink is allowed to allocate (reserve() pre-sizes the buffers).
class RecordingTrace final : public DecisionTrace {
 public:
  struct StepRecord {
    std::size_t step = 0;
    std::vector<graph::TaskId> itq_tasks;
    std::vector<double> itq_pv;
    graph::TaskId selected = graph::kInvalidTask;
    std::vector<double> eft;
    platform::ProcId chosen = platform::kInvalidProc;
    double start = 0.0;
    double finish = 0.0;
  };
  struct NoteRecord {
    std::string kind;
    double value = 0.0;
  };

  void on_begin(const ScheduleBeginEvent& ev) override;
  void on_step(const StepEvent& ev) override;
  void on_duplication(const DuplicationEvent& ev) override;
  void on_placement(const PlacementEvent& ev) override;
  void on_note(std::string_view kind, double value) override;
  void on_end(const ScheduleEndEvent& ev) override;

  /// Pre-sizes the event buffers (e.g. to the task count).
  void reserve(std::size_t steps_hint);
  void clear();

  // Accessors racy only against concurrent emission; read after the run.
  std::string scheduler() const;
  std::size_t num_tasks() const;
  std::size_t num_procs() const;
  const std::vector<StepRecord>& steps() const { return steps_; }
  const std::vector<DuplicationEvent>& duplications() const {
    return duplications_;
  }
  const std::vector<PlacementEvent>& placements() const { return placements_; }
  const std::vector<NoteRecord>& notes() const { return notes_; }
  bool has_end() const { return has_end_; }
  const ScheduleEndEvent& end() const { return end_; }

 private:
  mutable std::mutex mu_;
  std::string scheduler_;
  std::size_t num_tasks_ = 0;
  std::size_t num_procs_ = 0;
  std::vector<StepRecord> steps_;
  std::vector<DuplicationEvent> duplications_;
  std::vector<PlacementEvent> placements_;
  std::vector<NoteRecord> notes_;
  ScheduleEndEvent end_;
  bool has_end_ = false;
};

/// Replays a finished schedule into `sink` as begin/placement/end events —
/// the one-line instrumentation hook for baselines whose inner loops are not
/// worth threading a sink through. Placements are emitted in per-processor
/// timeline order. No-op when sink is null.
void emit_schedule(DecisionTrace* sink, std::string_view scheduler,
                   const sim::Schedule& schedule);

}  // namespace hdlts::obs
