// Continuous runtime monitoring: a background sampler that turns the
// process-wide MetricRegistry into a JSONL timeline and a pass/warn/fail
// SLO verdict while the BatchEngine (or any other workload) runs for
// minutes. Modeled on WiredTiger cppsuite's runtime_monitor; driven by
// examples/stress_tool.cpp (docs/OBSERVABILITY.md).
//
// Each sample, on a configurable period:
//   * counters    -> per-second rates over the sample window
//   * histograms  -> p50/p95/p99 estimates (obs/quantile.hpp) over the
//                    window's delta buckets (cumulative when the window saw
//                    no observations) plus the window observation rate
//   * gauges      -> current values
//   * the process -> RSS, CPU utilisation, thread count from /proc/self
//                    (zeros off Linux)
//   * SLO gates   -> per-sample verdicts on the window values
// and one JSON object is appended to the timeline stream (JSONL — one line
// per sample, every double through util::json_number).
//
// SLO gates are declarative (SloGate): a minimum counter rate (throughput
// floors), a maximum histogram p99 (latency ceilings), a maximum RSS growth
// factor vs the post-warm-up baseline (leak detection), and a maximum
// counter total (zero-violation gates). finish()/report() evaluates them
// over the WHOLE run — window verdicts in the timeline are advisory — and
// any fail makes the run verdict kFail; within warn_margin of a bound makes
// it kWarn.
//
// The monitor perturbs nothing it observes: sampling reads relaxed atomics
// under the registry mutex, all allocation happens on the monitor thread,
// and between samples the thread sleeps in a condition-variable wait — an
// idle monitor leaves the schedulers' zero-allocation steady state intact
// (tests/alloc_test.cpp::MonitorIdleKeepsZeroAllocSteadyState).
//
// Determinism hooks for tests: the clock, the process sampler, and the
// registry are all injectable, and sample_once() is public so a unit test
// can drive the monitor without the background thread
// (tests/monitor_test.cpp runs a fake clock against an injected registry).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "hdlts/obs/metrics.hpp"

namespace hdlts::obs {

/// Point-in-time process resource usage (Linux: /proc/self/statm,
/// /proc/self/stat, /proc/self/status; zeros with valid=false elsewhere).
struct ProcessStats {
  double rss_mb = 0.0;
  double cpu_seconds = 0.0;  ///< utime + stime, cumulative
  std::uint64_t threads = 0;
  bool valid = false;
};

/// Reads the current process's resource usage from /proc/self.
ProcessStats read_process_stats();

enum class SloKind {
  kMinCounterRate,     ///< counter rate/s must stay >= bound
  kMaxHistogramP99,    ///< histogram p99 must stay <= bound
  kMaxRssGrowth,       ///< last RSS / baseline RSS must stay <= bound
  kMaxCounterTotal,    ///< counter total must stay <= bound (0 = never)
};

struct SloGate {
  SloKind kind = SloKind::kMaxCounterTotal;
  /// Registry metric name (ignored for kMaxRssGrowth).
  std::string metric;
  double bound = 0.0;
  /// Short label for reports ("min_rps", "max_p99_ms", ...).
  std::string label;
};

enum class Verdict { kPass, kWarn, kFail };

std::string_view verdict_name(Verdict v);

struct GateResult {
  SloGate gate;
  double observed = 0.0;
  Verdict verdict = Verdict::kPass;
  std::string detail;  ///< human-readable "observed X vs bound Y" line
};

struct MonitorReport {
  Verdict verdict = Verdict::kPass;
  std::vector<GateResult> gates;
  std::size_t samples = 0;
  double elapsed_s = 0.0;
};

struct MonitorOptions {
  /// Sampler thread period. Ignored when the caller drives sample_once().
  std::chrono::milliseconds period{1000};
  /// Registry to sample; null means MetricRegistry::global().
  MetricRegistry* registry = nullptr;
  /// JSONL sink; null disables the timeline (gates still evaluate).
  std::ostream* timeline = nullptr;
  std::vector<SloGate> gates;
  /// Within this fraction of a bound counts as kWarn: a max gate warns above
  /// bound * (1 - warn_margin), a min gate below bound * (1 + warn_margin).
  double warn_margin = 0.1;
  /// RSS-growth baseline: sample index whose RSS anchors the growth factor.
  /// The default (1) skips the first window so arena/ring warm-up growth is
  /// not mistaken for a leak; 0 anchors at start().
  std::size_t rss_baseline_sample = 1;
  /// Test hooks: monotone ns clock and process sampler. Defaults: steady
  /// clock and read_process_stats().
  std::function<std::int64_t()> clock_ns;
  std::function<ProcessStats()> process_stats;
};

class RuntimeMonitor {
 public:
  explicit RuntimeMonitor(MonitorOptions options = {});
  /// Stops the sampler thread; does NOT take a final sample (call finish()).
  ~RuntimeMonitor();

  RuntimeMonitor(const RuntimeMonitor&) = delete;
  RuntimeMonitor& operator=(const RuntimeMonitor&) = delete;

  /// Captures the t=0 baseline and spawns the sampler thread. start() twice
  /// is an error; a never-started monitor can still be driven manually via
  /// baseline() + sample_once().
  void start();

  /// Captures the baseline without spawning a thread (manual driving).
  void baseline();

  /// Takes one sample now: window rates/percentiles, process stats, gate
  /// checks, one JSONL line. Thread-safe (the sampler thread calls this).
  void sample_once();

  /// Stops the sampler thread (idempotent), takes one final sample, and
  /// returns the whole-run report. The verdict is the worst gate verdict.
  MonitorReport finish();

  /// Whole-run evaluation without stopping (also what finish() returns).
  MonitorReport report() const;

  std::size_t samples() const;

 private:
  struct HistogramState {
    std::vector<std::uint64_t> buckets;
    double sum = 0.0;
  };

  void run_loop();
  std::int64_t now_ns() const;
  GateResult evaluate_gate(const SloGate& gate, double observed) const;
  /// Whole-run gate evaluation against the baseline snapshot. Caller holds
  /// mu_.
  MonitorReport report_locked() const;

  MonitorOptions options_;
  MetricRegistry* registry_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
  bool baselined_ = false;

  std::int64_t start_ns_ = 0;
  std::int64_t last_sample_ns_ = 0;
  std::size_t num_samples_ = 0;
  double baseline_rss_mb_ = 0.0;
  double last_rss_mb_ = 0.0;
  double last_cpu_seconds_ = 0.0;
  // Previous cumulative values, for window deltas. Names are copied once at
  // first sight; instruments live as long as the registry.
  std::unordered_map<std::string, std::uint64_t> prev_counters_;
  std::unordered_map<std::string, HistogramState> prev_histograms_;
  // t=0 cumulative values, for whole-run rates in report().
  std::unordered_map<std::string, std::uint64_t> base_counters_;
};

}  // namespace hdlts::obs
