#include "hdlts/obs/span.hpp"

#include <chrono>

namespace hdlts::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Small dense thread ordinal for trace lanes (stable within a run).
std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Per-thread open-span depth (TimingSpan nesting level).
thread_local std::uint32_t t_depth = 0;

}  // namespace

SpanLog& SpanLog::global() {
  static SpanLog log;
  return log;
}

void SpanLog::enable(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, SpanEvent{});
  next_ = 0;
  epoch_ns_ = steady_ns();
  enabled_.store(true, std::memory_order_relaxed);
}

void SpanLog::disable() { enabled_.store(false, std::memory_order_relaxed); }

std::int64_t SpanLog::now_ns() const {
  if (!enabled()) return 0;
  const std::lock_guard<std::mutex> lock(mu_);
  return steady_ns() - epoch_ns_;
}

void SpanLog::record(const SpanEvent& ev) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return;
  ring_[next_ % ring_.size()] = ev;
  ++next_;
}

std::vector<SpanEvent> SpanLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanEvent> out;
  if (ring_.empty()) return out;
  const std::uint64_t count =
      next_ < ring_.size() ? next_ : static_cast<std::uint64_t>(ring_.size());
  out.reserve(static_cast<std::size_t>(count));
  const std::uint64_t first = next_ - count;
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t SpanLog::total_recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

std::uint64_t SpanLog::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_ < ring_.size() ? 0 : next_ - ring_.size();
}

std::size_t SpanLog::capacity() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void SpanLog::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (SpanEvent& ev : ring_) ev = SpanEvent{};
  next_ = 0;
  epoch_ns_ = steady_ns();
}

TimingSpan::TimingSpan(const char* name) : name_(name) {
  SpanLog& log = SpanLog::global();
  if (!log.enabled()) return;
  active_ = true;
  depth_ = t_depth++;
  start_ns_ = log.now_ns();
}

TimingSpan::~TimingSpan() {
  if (!active_) return;
  --t_depth;
  SpanLog& log = SpanLog::global();
  SpanEvent ev;
  ev.name = name_;
  ev.tid = thread_ordinal();
  ev.depth = depth_;
  ev.start_ns = start_ns_;
  ev.dur_ns = log.now_ns() - start_ns_;
  log.record(ev);
}

}  // namespace hdlts::obs
