// Telemetry exporters: Chrome trace-event JSON (chrome://tracing, Perfetto)
// and a flat counters dump.
//
// The Chrome export overlays two clock domains as separate trace processes:
//   pid 1 "scheduler (wall clock)"  — real TimingSpan events from a SpanLog,
//                                     one lane (tid) per thread, ts in real µs
//   pid 2 "simulated schedule"      — the produced schedule's timeline, one
//                                     lane per processor ("P1".."PN"), plus a
//                                     "decisions" lane of instant events (ITQ
//                                     steps, Algorithm-1 duplication
//                                     verdicts, notes), ts = simulated time
//                                     scaled by `sim_scale`
// Events are sorted by ts within each lane, so any lane reads monotonically
// in a viewer (pinned by tests/trace_test.cpp).
#pragma once

#include <iosfwd>

#include "hdlts/obs/metrics.hpp"
#include "hdlts/obs/span.hpp"
#include "hdlts/obs/trace.hpp"

namespace hdlts::graph {
class TaskGraph;
}

namespace hdlts::obs {

struct ChromeTraceOptions {
  /// Simulated time units -> trace µs (the trace format's native unit).
  double sim_scale = 1000.0;
  /// When set, task blocks are labelled with graph names instead of "T<id>".
  const graph::TaskGraph* graph = nullptr;
};

/// Any of `schedule`, `decisions`, `spans` may be null; whatever is present
/// is exported. When `schedule` is null but `decisions` recorded placements,
/// the simulated lanes are rebuilt from the recorded placement events (the
/// online/stream case, which produces no sim::Schedule).
void write_chrome_trace(std::ostream& os, const sim::Schedule* schedule,
                        const RecordingTrace* decisions, const SpanLog* spans,
                        const ChromeTraceOptions& options = {});

/// The registry's {"counters":…,"gauges":…,"histograms":…} document.
void write_counters_json(std::ostream& os, const MetricRegistry& registry);

}  // namespace hdlts::obs
