// RAII timing spans feeding a bounded ring-buffer event log.
//
// A TimingSpan brackets a region of real (wall-clock) work — a schedule_into
// call, a compile step, an experiment chunk. When the process-wide SpanLog is
// disabled (the default) constructing a span costs one relaxed atomic load
// and touches no clock, so spans can stay in the hot paths permanently; the
// zero-allocation steady state of the compiled scheduler path is unaffected
// either way because recording writes into a pre-allocated ring.
//
// Nesting is tracked per thread (a thread-local depth counter), so exports
// can reconstruct the span tree; completed spans are recorded at close time,
// which means children appear before their parents in the log — consumers
// order by start_ns.
//
// Span names must be string literals (or otherwise outlive the log): the log
// stores the pointer, not a copy, to keep record() allocation-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace hdlts::obs {

struct SpanEvent {
  const char* name = nullptr;  ///< static-lifetime label
  std::uint32_t tid = 0;       ///< small per-thread ordinal (not the OS tid)
  std::uint32_t depth = 0;     ///< nesting depth at open (0 = top level)
  std::int64_t start_ns = 0;   ///< steady-clock ns since SpanLog::enable()
  std::int64_t dur_ns = 0;
};

class SpanLog {
 public:
  static SpanLog& global();

  /// Allocates (or re-sizes) the ring, clears it, and restarts the epoch.
  void enable(std::size_t capacity = std::size_t{1} << 14);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Steady-clock ns since enable(); 0 when disabled.
  std::int64_t now_ns() const;

  /// Appends one completed span; silently drops when disabled. When the ring
  /// is full the oldest events are overwritten (dropped() reports how many).
  void record(const SpanEvent& ev);

  /// Recorded events, oldest first (by completion order).
  std::vector<SpanEvent> snapshot() const;

  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;
  std::size_t capacity() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<SpanEvent> ring_;
  std::uint64_t next_ = 0;  // total events ever recorded since enable/clear
  std::atomic<bool> enabled_{false};
  std::int64_t epoch_ns_ = 0;  // steady_clock at enable()
};

/// RAII span against SpanLog::global(). `name` must be static-lifetime.
class TimingSpan {
 public:
  explicit TimingSpan(const char* name);
  ~TimingSpan();

  TimingSpan(const TimingSpan&) = delete;
  TimingSpan& operator=(const TimingSpan&) = delete;

 private:
  const char* name_;
  std::int64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace hdlts::obs
