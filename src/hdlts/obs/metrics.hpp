// Process-wide metric registry: named counters, gauges, and fixed-bucket
// histograms for the scheduler hot paths.
//
// Design constraints (see docs/OBSERVABILITY.md):
//  * Updates are lock-free relaxed atomics — safe from any thread, including
//    metrics::run_repetitions worker pools, and never allocate. Hot loops are
//    expected to aggregate into plain locals and flush once per schedule
//    call, so the per-decision cost of telemetry is zero even when enabled.
//  * Registration (counter()/gauge()/histogram()) takes a mutex and may
//    allocate; callers cache the returned reference (it is stable for the
//    registry's lifetime). The zero-allocation steady state of the compiled
//    scheduler path is preserved because registration happens once, during
//    warm-up.
//  * Iteration order is stable: registration order within each kind, so JSON
//    dumps diff cleanly across runs.
//
// Naming convention: dotted lower-case paths, "<subsystem>.<what>"
// ("hdlts.schedule_calls", "online.lost_executions").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hdlts::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written (or maximum) scalar, e.g. a high-water mark.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (lock-free CAS loop).
  void record_max(double v);
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations x <= bounds[i]
/// (first matching bucket); values above the last bound land in the implicit
/// overflow bucket. NaN observations count toward the total and the overflow
/// bucket but are excluded from the sum, so one bad value cannot poison it.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::span<const double> bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One registered instrument, exposed to iteration consumers (the JSONL
/// runtime monitor, the Prometheus renderer). Exactly one of the three
/// pointers is non-null, matching `kind`.
struct MetricView {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string_view name;
  Kind kind = Kind::kCounter;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry every built-in metric lands in.
  static MetricRegistry& global();

  /// Finds or creates the named metric. Throws InvalidArgument when the name
  /// is already registered as a different kind. For histogram(), `bounds` is
  /// only consulted on first registration.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  std::size_t size() const;

  /// Calls `fn` once per registered instrument, in registration order, under
  /// the registry mutex — `fn` must not register new metrics (deadlock) and
  /// should copy values out rather than retaining the views past the call.
  /// Instrument values keep updating concurrently (reads are relaxed atomic
  /// loads), so a visit is a point-in-time-ish snapshot, not a barrier.
  void visit(const std::function<void(const MetricView&)>& fn) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} in
  /// registration order, all doubles via util::json_number (non-finite ->
  /// null). Histograms additionally carry "p50"/"p95"/"p99" estimates from
  /// obs/quantile.hpp (null while empty).
  void write_json(std::ostream& os) const;

  /// Zeroes every value; registrations (and cached references) survive.
  void reset_values();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_create(std::string_view name, Kind kind);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace hdlts::obs
