#include "hdlts/net/client.hpp"

#include <poll.h>

#include <array>
#include <cerrno>

#include "hdlts/util/error.hpp"

namespace hdlts::net {

namespace {

// Response frames can carry large stream arrays; the client bound only
// protects against a runaway peer, so it is deliberately generous.
constexpr std::size_t kMaxResponseBytes = 64u << 20;

/// Waits until `fd` is readable; false on timeout.
bool wait_readable(int fd, std::chrono::milliseconds timeout) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) throw Error(errno_message("poll"));
  }
}

}  // namespace

Client::Client(std::uint16_t port, std::chrono::milliseconds timeout)
    : fd_(connect_tcp(port)), framer_(kMaxResponseBytes), timeout_(timeout) {}

void Client::send_line(std::string_view line) {
  if (!fd_.valid()) throw Error("client connection is closed");
  std::string frame(line);
  frame += '\n';
  if (!send_all(fd_.get(), frame)) {
    throw Error(errno_message("send to server"));
  }
}

std::string Client::recv_line() {
  if (!fd_.valid()) throw Error("client connection is closed");
  std::string frame;
  std::array<char, 65536> buffer;
  for (;;) {
    const auto next = framer_.next(frame);
    if (next == LineFramer::Next::kFrame) return frame;
    if (next == LineFramer::Next::kOverflow) {
      throw Error("response frame exceeds client bound");
    }
    if (!wait_readable(fd_.get(), timeout_)) {
      throw Error("timed out waiting for server response");
    }
    const long n = recv_some(fd_.get(), buffer.data(), buffer.size());
    if (n < 0) throw Error(errno_message("recv from server"));
    if (n == 0) throw Error("server closed the connection");
    framer_.feed(
        std::string_view(buffer.data(), static_cast<std::size_t>(n)));
  }
}

std::string Client::request(std::string_view line) {
  send_line(line);
  return recv_line();
}

void Client::close() { fd_.reset(); }

std::string Client::scrape_metrics(std::uint16_t port,
                                   std::chrono::milliseconds timeout) {
  Fd fd = connect_tcp(port);
  if (!send_all(fd.get(), "GET /metrics\n")) {
    throw Error(errno_message("send scrape request"));
  }
  // The server answers with one HTTP response and closes: read to EOF.
  std::string response;
  std::array<char, 65536> buffer;
  for (;;) {
    if (!wait_readable(fd.get(), timeout)) {
      throw Error("timed out waiting for metrics scrape");
    }
    const long n = recv_some(fd.get(), buffer.data(), buffer.size());
    if (n < 0) throw Error(errno_message("recv scrape response"));
    if (n == 0) break;
    response.append(buffer.data(), static_cast<std::size_t>(n));
    if (response.size() > kMaxResponseBytes) {
      throw Error("metrics scrape exceeds client bound");
    }
  }
  const auto split = response.find("\r\n\r\n");
  if (response.rfind("HTTP/1.0 200", 0) != 0 || split == std::string::npos) {
    throw Error("malformed metrics scrape response");
  }
  return response.substr(split + 4);
}

}  // namespace hdlts::net
