// Thin POSIX TCP wrappers for the serve daemon: an RAII fd, loopback
// listen/connect helpers, and EINTR-safe send/recv. Everything binds to
// 127.0.0.1 only — the daemon is a scheduling service for trusted harnesses
// (CI, soak, local clients), not an internet-facing server, and keeping the
// bind loopback-only makes that a property of the code rather than of a
// firewall.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hdlts::net {

/// Owning file descriptor (closes on destruction; move-only).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral port;
/// `bound_port` receives the actual port either way). SO_REUSEADDR is set so
/// CI restarts don't trip over TIME_WAIT. Throws hdlts::Error on failure.
Fd listen_tcp(std::uint16_t port, std::uint16_t* bound_port,
              int backlog = 64);

/// Blocking connect to 127.0.0.1:`port`. Throws hdlts::Error on failure.
Fd connect_tcp(std::uint16_t port);

void set_nonblocking(int fd);

/// Sends the whole buffer (blocking fd), retrying on EINTR and suppressing
/// SIGPIPE; false when the peer closed or an error occurred.
bool send_all(int fd, std::string_view bytes);

/// One recv into `buffer` (EINTR-retried). Returns bytes read, 0 on orderly
/// shutdown, -1 on error/EAGAIN (errno preserved).
long recv_some(int fd, char* buffer, std::size_t capacity);

/// errno rendered as "message (errno N)".
std::string errno_message(std::string_view what);

}  // namespace hdlts::net
