#include "hdlts/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "hdlts/util/error.hpp"

namespace hdlts::net {

void Fd::reset() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc != 0 && errno == EINTR);
    fd_ = -1;
  }
}

std::string errno_message(std::string_view what) {
  const int err = errno;
  std::string out(what);
  out += ": ";
  out += std::strerror(err);
  out += " (errno " + std::to_string(err) + ")";
  return out;
}

Fd listen_tcp(std::uint16_t port, std::uint16_t* bound_port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw Error(errno_message("socket"));
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    throw Error(errno_message("setsockopt(SO_REUSEADDR)"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw Error(errno_message("bind 127.0.0.1:" + std::to_string(port)));
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw Error(errno_message("listen"));
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      throw Error(errno_message("getsockname"));
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Fd connect_tcp(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw Error(errno_message("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    throw Error(errno_message("connect 127.0.0.1:" + std::to_string(port)));
  }
  const int one = 1;
  // Best-effort: the protocol is request/response lines, Nagle only hurts.
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw Error(errno_message("fcntl(O_NONBLOCK)"));
  }
}

bool send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const auto n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                          MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

long recv_some(int fd, char* buffer, std::size_t capacity) {
  long n;
  do {
    n = ::recv(fd, buffer, capacity, 0);
  } while (n < 0 && errno == EINTR);
  return n;
}

}  // namespace hdlts::net
