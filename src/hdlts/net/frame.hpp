// Length-bounded JSONL framing for the service wire protocol
// (docs/SERVICE.md): one frame is one JSON value on one line, terminated by
// '\n' (a preceding '\r' is stripped so netcat/telnet clients work).
//
// The framer is a pure byte-stream splitter — it never looks inside a frame.
// Its one security-relevant job is the length bound: a peer that streams
// max_frame_bytes without a newline is flagged as kOverflow and the caller
// must close the connection (there is no way to re-synchronise a line
// protocol after an oversized line, because the overflowing bytes have
// already been discarded).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace hdlts::net {

class LineFramer {
 public:
  /// `max_frame_bytes` bounds one frame's length EXCLUDING the newline.
  explicit LineFramer(std::size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes from the socket.
  void feed(std::string_view bytes);

  enum class Next {
    kFrame,     ///< `frame` holds one complete line (newline stripped)
    kNeedMore,  ///< no complete line buffered yet
    kOverflow,  ///< line exceeded max_frame_bytes — close the connection
  };

  /// Extracts the next complete frame into `frame` (overwritten). After
  /// kOverflow the framer stays in the overflow state forever.
  Next next(std::string& frame);

  std::size_t buffered() const { return buffer_.size(); }
  bool overflowed() const { return overflowed_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t scan_from_ = 0;  ///< buffer_ prefix already known newline-free
  bool overflowed_ = false;
};

}  // namespace hdlts::net
