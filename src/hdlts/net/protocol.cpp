#include "hdlts/net/protocol.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "hdlts/io/workload_io.hpp"
#include "hdlts/util/json.hpp"
#include "hdlts/util/json_parse.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/gauss.hpp"
#include "hdlts/workload/md.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::net {

namespace {

[[noreturn]] void fail(ErrorCode code, const std::string& message) {
  throw ProtocolError(code, message);
}

/// A non-negative integral JSON number (ids, seeds, sizes are all uints on
/// the wire; 2^53 bounds what a double can hold exactly).
std::uint64_t as_uint(const util::JsonValue& v, const char* what) {
  if (!v.is_number()) {
    fail(ErrorCode::kMalformedRequest,
         std::string(what) + " must be a number");
  }
  const double d = v.as_number();
  if (!(d >= 0) || d != std::floor(d) || d > 9007199254740992.0) {
    fail(ErrorCode::kMalformedRequest,
         std::string(what) + " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

double as_double(const util::JsonValue& v, const char* what) {
  if (!v.is_number()) {
    fail(ErrorCode::kMalformedRequest,
         std::string(what) + " must be a number");
  }
  return v.as_number();
}

const std::string& as_string(const util::JsonValue& v, const char* what) {
  if (!v.is_string()) {
    fail(ErrorCode::kMalformedRequest,
         std::string(what) + " must be a string");
  }
  return v.as_string();
}

GeneratorSpec parse_generator(const util::JsonValue& v, const Limits& limits) {
  if (!v.is_object()) {
    fail(ErrorCode::kMalformedRequest, "generator must be an object");
  }
  GeneratorSpec spec;
  for (const auto& [key, value] : v.as_object()) {
    if (key == "kind") {
      spec.kind = as_string(value, "generator.kind");
    } else if (key == "tasks") {
      spec.tasks = static_cast<std::size_t>(as_uint(value, "generator.tasks"));
    } else if (key == "alpha") {
      spec.alpha = as_double(value, "generator.alpha");
    } else if (key == "density") {
      spec.density =
          static_cast<std::size_t>(as_uint(value, "generator.density"));
    } else if (key == "points") {
      spec.points =
          static_cast<std::size_t>(as_uint(value, "generator.points"));
    } else if (key == "nodes") {
      spec.nodes = static_cast<std::size_t>(as_uint(value, "generator.nodes"));
    } else if (key == "matrix") {
      spec.matrix =
          static_cast<std::size_t>(as_uint(value, "generator.matrix"));
    } else if (key == "cpus") {
      spec.cpus = static_cast<std::size_t>(as_uint(value, "generator.cpus"));
    } else if (key == "ccr") {
      spec.ccr = as_double(value, "generator.ccr");
    } else if (key == "beta") {
      spec.beta = as_double(value, "generator.beta");
    } else if (key == "wdag") {
      spec.wdag = as_double(value, "generator.wdag");
    } else {
      fail(ErrorCode::kMalformedRequest, "unknown generator key '" + key + "'");
    }
  }
  if (spec.kind != "random" && spec.kind != "fft" && spec.kind != "montage" &&
      spec.kind != "md" && spec.kind != "gauss") {
    fail(ErrorCode::kMalformedRequest,
         "unknown generator kind '" + spec.kind + "'");
  }
  if (spec.cpus == 0) {
    fail(ErrorCode::kMalformedRequest, "generator.cpus must be >= 1");
  }
  if (spec.cpus > limits.max_procs) {
    fail(ErrorCode::kOverLimits, "generator.cpus exceeds max_procs limit");
  }
  // Rough task-count bound per kind, checked before the expensive build.
  // fft(points=m) builds ~2m recursive + m*log2(m) butterfly tasks;
  // gauss(n) builds n(n+1)/2 - 1; montage/md are ~nodes and fixed-size.
  std::size_t approx_tasks = spec.tasks;
  if (spec.kind == "fft") {
    std::size_t m = spec.points, lg = 0;
    while (m > 1) {
      m /= 2;
      ++lg;
    }
    approx_tasks = 2 * spec.points + spec.points * lg;
  } else if (spec.kind == "montage") {
    approx_tasks = spec.nodes + 16;
  } else if (spec.kind == "md") {
    approx_tasks = 41;
  } else if (spec.kind == "gauss") {
    approx_tasks = spec.matrix * (spec.matrix + 1) / 2;
  }
  if (approx_tasks > limits.max_tasks) {
    fail(ErrorCode::kOverLimits, "generated task count exceeds max_tasks");
  }
  return spec;
}

workload::CostParams cost_params(const GeneratorSpec& spec) {
  workload::CostParams costs;
  costs.num_procs = spec.cpus;
  costs.ccr = spec.ccr;
  costs.beta = spec.beta;
  costs.wdag = spec.wdag;
  return costs;
}

sim::Workload parse_inline_workload(const util::JsonValue& v,
                                    const Limits& limits) {
  const std::string& text = as_string(v, "workload");
  if (text.size() > limits.max_workload_bytes) {
    fail(ErrorCode::kOverLimits, "inline workload exceeds max_workload_bytes");
  }
  std::istringstream is(text);
  try {
    sim::Workload w = io::read_workload(is);
    if (w.graph.num_tasks() > limits.max_tasks) {
      fail(ErrorCode::kOverLimits, "inline workload exceeds max_tasks");
    }
    if (w.platform.num_procs() > limits.max_procs) {
      fail(ErrorCode::kOverLimits, "inline workload exceeds max_procs");
    }
    return w;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    fail(ErrorCode::kMalformedRequest,
         std::string("bad inline workload: ") + e.what());
  }
}

void append_key(std::string& out, std::string_view key) {
  out += '"';
  out += key;
  out += "\":";
}

void append_string(std::string& out, std::string_view key,
                   std::string_view value) {
  append_key(out, key);
  out += '"';
  out += util::json_escape(value);
  out += '"';
}

void append_uint(std::string& out, std::string_view key, std::uint64_t value) {
  append_key(out, key);
  out += std::to_string(value);
}

void append_context(std::string& out, std::optional<std::uint64_t> id,
                    std::string_view tenant) {
  if (id.has_value()) {
    out += ',';
    append_uint(out, "id", *id);
  }
  if (!tenant.empty()) {
    out += ',';
    append_string(out, "tenant", tenant);
  }
}

}  // namespace

std::string_view error_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformedRequest:
      return "MalformedRequest";
    case ErrorCode::kOverLimits:
      return "OverLimits";
    case ErrorCode::kQueueFull:
      return "QueueFull";
    case ErrorCode::kInternal:
      return "Internal";
  }
  return "Internal";
}

sim::Workload make_workload(const GeneratorSpec& spec, std::uint64_t seed) {
  if (spec.kind == "random") {
    workload::RandomDagParams p;
    p.num_tasks = spec.tasks;
    p.alpha = spec.alpha;
    p.density = spec.density;
    p.costs = cost_params(spec);
    return workload::random_workload(p, seed);
  }
  if (spec.kind == "fft") {
    workload::FftParams p;
    p.points = spec.points;
    p.costs = cost_params(spec);
    return workload::fft_workload(p, seed);
  }
  if (spec.kind == "montage") {
    workload::MontageParams p;
    p.num_nodes = spec.nodes;
    p.costs = cost_params(spec);
    return workload::montage_workload(p, seed);
  }
  if (spec.kind == "md") {
    workload::MdParams p;
    p.costs = cost_params(spec);
    return workload::md_workload(p, seed);
  }
  if (spec.kind == "gauss") {
    workload::GaussParams p;
    p.matrix_size = spec.matrix;
    p.costs = cost_params(spec);
    return workload::gauss_workload(p, seed);
  }
  throw InvalidArgument("unknown generator kind '" + spec.kind + "'");
}

ParsedRequest parse_request(std::string_view frame, const Limits& limits) {
  ParsedRequest req;
  // Parse, then salvage id/tenant for the error response before validating
  // anything else, so even schema violations correlate on the wire.
  util::JsonValue root;
  try {
    root = util::parse_json(frame);
  } catch (const util::JsonParseError& e) {
    fail(ErrorCode::kMalformedRequest, e.what());
  }
  if (!root.is_object()) {
    fail(ErrorCode::kMalformedRequest, "request frame must be a JSON object");
  }
  std::optional<std::uint64_t> salvage_id;
  std::string salvage_tenant;
  if (const auto* id = root.find("id"); id != nullptr && id->is_number()) {
    const double d = id->as_number();
    if (d >= 0 && d == std::floor(d) && d <= 9007199254740992.0) {
      salvage_id = static_cast<std::uint64_t>(d);
    }
  }
  if (const auto* t = root.find("tenant"); t != nullptr && t->is_string()) {
    salvage_tenant = t->as_string();
  }
  try {
    const auto* op = root.find("op");
    if (op == nullptr) {
      fail(ErrorCode::kMalformedRequest, "missing op");
    }
    const std::string& verb = as_string(*op, "op");
    if (verb == "ping") {
      req.verb = Verb::kPing;
    } else if (verb == "stats") {
      req.verb = Verb::kStats;
    } else if (verb == "drain") {
      req.verb = Verb::kDrain;
    } else if (verb == "submit") {
      req.verb = Verb::kSubmit;
    } else {
      fail(ErrorCode::kMalformedRequest, "unknown op '" + verb + "'");
    }
    req.id = salvage_id;
    if (const auto* id = root.find("id"); id != nullptr && !req.id) {
      as_uint(*id, "id");  // present but not a valid uint: report why
    }
    if (!salvage_tenant.empty()) req.tenant = salvage_tenant;
    if (const auto* t = root.find("tenant");
        t != nullptr && (!t->is_string() || t->as_string().empty())) {
      fail(ErrorCode::kMalformedRequest, "tenant must be a non-empty string");
    }
    if (req.tenant.size() > 64) {
      fail(ErrorCode::kMalformedRequest, "tenant name too long (max 64)");
    }
    if (req.verb != Verb::kSubmit) return req;

    std::string kind = "static";
    if (const auto* k = root.find("kind"); k != nullptr) {
      kind = as_string(*k, "kind");
    }
    if (kind == "static") {
      req.job = svc::BatchJob::kStatic;
    } else if (kind == "online") {
      req.job = svc::BatchJob::kOnline;
    } else if (kind == "stream") {
      req.job = svc::BatchJob::kStream;
    } else {
      fail(ErrorCode::kMalformedRequest, "unknown kind '" + kind + "'");
    }
    if (const auto* s = root.find("seed"); s != nullptr) {
      req.seed = as_uint(*s, "seed");
    }

    const auto* workload = root.find("workload");
    const auto* generator = root.find("generator");
    if (req.job == svc::BatchJob::kStream) {
      if (workload != nullptr || generator != nullptr) {
        fail(ErrorCode::kMalformedRequest,
             "stream submits take arrivals, not workload/generator");
      }
      const auto* arrivals = root.find("arrivals");
      if (arrivals == nullptr || !arrivals->is_array() ||
          arrivals->as_array().empty()) {
        fail(ErrorCode::kMalformedRequest,
             "stream submits need a non-empty arrivals array");
      }
      if (arrivals->as_array().size() > limits.max_arrivals) {
        fail(ErrorCode::kOverLimits, "arrivals exceeds max_arrivals");
      }
      for (const auto& entry : arrivals->as_array()) {
        if (!entry.is_object()) {
          fail(ErrorCode::kMalformedRequest,
               "each arrival must be an object");
        }
        double arrival_time = 0.0;
        if (const auto* at = entry.find("arrival"); at != nullptr) {
          arrival_time = as_double(*at, "arrival.arrival");
          if (!(arrival_time >= 0)) {
            fail(ErrorCode::kMalformedRequest, "arrival.arrival must be >= 0");
          }
        }
        const auto* wl = entry.find("workload");
        const auto* gen = entry.find("generator");
        if ((wl != nullptr) == (gen != nullptr)) {
          fail(ErrorCode::kMalformedRequest,
               "each arrival needs exactly one of workload/generator");
        }
        if (wl != nullptr) {
          req.arrivals.push_back(
              {parse_inline_workload(*wl, limits), arrival_time});
        } else {
          const GeneratorSpec spec = parse_generator(*gen, limits);
          std::uint64_t seed = req.seed;
          if (const auto* s = entry.find("seed"); s != nullptr) {
            seed = as_uint(*s, "arrival.seed");
          }
          req.arrivals.push_back({make_workload(spec, seed), arrival_time});
        }
      }
      if (const auto* policy = root.find("policy"); policy != nullptr) {
        const std::string& p = as_string(*policy, "policy");
        if (p == "pv") {
          req.stream_options.policy = core::StreamPolicy::kHdltsPv;
        } else if (p == "fifo") {
          req.stream_options.policy = core::StreamPolicy::kFifoEft;
        } else {
          fail(ErrorCode::kMalformedRequest, "unknown policy '" + p + "'");
        }
      }
      return req;
    }

    if ((workload != nullptr) == (generator != nullptr)) {
      fail(ErrorCode::kMalformedRequest,
           "submit needs exactly one of workload/generator");
    }
    if (workload != nullptr) {
      req.workload = parse_inline_workload(*workload, limits);
    } else {
      req.generator = parse_generator(*generator, limits);
    }

    if (req.job == svc::BatchJob::kStatic) {
      const auto* schedulers = root.find("schedulers");
      if (schedulers == nullptr || !schedulers->is_array() ||
          schedulers->as_array().empty()) {
        fail(ErrorCode::kMalformedRequest,
             "static submits need a non-empty schedulers array");
      }
      if (schedulers->as_array().size() > limits.max_schedulers) {
        fail(ErrorCode::kOverLimits, "schedulers exceeds max_schedulers");
      }
      for (const auto& name : schedulers->as_array()) {
        req.schedulers.push_back(as_string(name, "schedulers[]"));
      }
      if (root.find("failures") != nullptr) {
        fail(ErrorCode::kMalformedRequest,
             "failures are only valid on online submits");
      }
    } else {  // kOnline
      if (root.find("schedulers") != nullptr) {
        fail(ErrorCode::kMalformedRequest,
             "schedulers are only valid on static submits");
      }
      if (const auto* failures = root.find("failures"); failures != nullptr) {
        if (!failures->is_array()) {
          fail(ErrorCode::kMalformedRequest, "failures must be an array");
        }
        if (failures->as_array().size() > limits.max_failures) {
          fail(ErrorCode::kOverLimits, "failures exceeds max_failures");
        }
        for (const auto& entry : failures->as_array()) {
          if (!entry.is_object()) {
            fail(ErrorCode::kMalformedRequest,
                 "each failure must be an object");
          }
          core::ProcFailure failure;
          const auto* proc = entry.find("proc");
          if (proc == nullptr) {
            fail(ErrorCode::kMalformedRequest, "failure needs a proc");
          }
          failure.proc =
              static_cast<platform::ProcId>(as_uint(*proc, "failure.proc"));
          if (const auto* time = entry.find("time"); time != nullptr) {
            failure.time = as_double(*time, "failure.time");
            if (!(failure.time >= 0)) {
              fail(ErrorCode::kMalformedRequest, "failure.time must be >= 0");
            }
          }
          req.failures.push_back(failure);
        }
      }
    }
    if (root.find("arrivals") != nullptr) {
      fail(ErrorCode::kMalformedRequest,
           "arrivals are only valid on stream submits");
    }
    return req;
  } catch (ProtocolError& e) {
    e.set_context(salvage_id, salvage_tenant);
    throw;
  }
}

std::string render_error(ErrorCode code, std::string_view message,
                         std::optional<std::uint64_t> id,
                         std::string_view tenant) {
  std::string out = "{\"ok\":false,";
  append_uint(out, "code", static_cast<std::uint64_t>(code));
  out += ',';
  append_string(out, "error", error_name(code));
  out += ',';
  append_string(out, "message", message);
  append_context(out, id, tenant);
  out += "}\n";
  return out;
}

std::string render_pong() { return "{\"ok\":true,\"op\":\"ping\"}\n"; }

std::string render_drain_ack() {
  return "{\"ok\":true,\"op\":\"drain\",\"draining\":true}\n";
}

std::string render_stats(const StatsSnapshot& s) {
  std::string out = "{\"ok\":true,\"op\":\"stats\",";
  append_uint(out, "accepted", s.accepted);
  out += ',';
  append_uint(out, "rejected", s.rejected);
  out += ',';
  append_uint(out, "completed", s.completed);
  out += ',';
  append_uint(out, "active_sessions", s.active_sessions);
  out += ',';
  append_uint(out, "queued", s.queued);
  out += ',';
  append_uint(out, "engine_submitted", s.engine_submitted);
  out += ',';
  append_uint(out, "engine_completed", s.engine_completed);
  out += ',';
  append_uint(out, "engine_cancelled", s.engine_cancelled);
  out += ",\"draining\":";
  out += s.draining ? "true" : "false";
  out += "}\n";
  return out;
}

std::string render_static_entry(std::string_view scheduler, bool ok,
                                double makespan, std::string_view error) {
  std::string out = "{";
  append_string(out, "scheduler", scheduler);
  if (ok) {
    out += ",\"ok\":true,";
    append_key(out, "makespan");
    out += util::json_number(makespan);
  } else {
    out += ",\"ok\":false,";
    append_string(out, "error", error);
  }
  out += '}';
  return out;
}

namespace {

std::string render_submit_prefix(std::optional<std::uint64_t> id,
                                 std::string_view tenant,
                                 std::string_view kind, std::uint64_t seed) {
  std::string out = "{\"ok\":true";
  append_context(out, id, tenant);
  out += ',';
  append_string(out, "kind", kind);
  out += ',';
  append_uint(out, "seed", seed);
  return out;
}

void append_number_array(std::string& out, std::string_view key,
                         const std::vector<double>& values) {
  append_key(out, key);
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += util::json_number(values[i]);
  }
  out += ']';
}

}  // namespace

std::string render_static_response(std::optional<std::uint64_t> id,
                                   std::string_view tenant, std::uint64_t seed,
                                   const std::vector<std::string>& entries) {
  std::string out = render_submit_prefix(id, tenant, "static", seed);
  out += ",\"results\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ',';
    out += entries[i];
  }
  out += "]}\n";
  return out;
}

std::string render_online_response(std::optional<std::uint64_t> id,
                                   std::string_view tenant, std::uint64_t seed,
                                   const core::OnlineResult& result) {
  std::string out = render_submit_prefix(id, tenant, "online", seed);
  out += ",\"completed\":";
  out += result.completed ? "true" : "false";
  out += ',';
  append_key(out, "makespan");
  out += util::json_number(result.makespan);
  out += ',';
  append_uint(out, "executions", result.executions.size());
  out += ',';
  append_uint(out, "lost_executions", result.lost_executions);
  out += "}\n";
  return out;
}

std::string render_stream_response(std::optional<std::uint64_t> id,
                                   std::string_view tenant, std::uint64_t seed,
                                   const core::StreamResult& result) {
  std::string out = render_submit_prefix(id, tenant, "stream", seed);
  out += ',';
  append_key(out, "makespan");
  out += util::json_number(result.makespan);
  out += ',';
  append_uint(out, "executions", result.executions.size());
  out += ',';
  append_number_array(out, "finish", result.finish);
  out += ',';
  append_number_array(out, "flow_time", result.flow_time);
  out += "}\n";
  return out;
}

bool is_metrics_request(std::string_view frame) {
  if (frame == "GET /metrics") return true;
  return frame.rfind("GET /metrics ", 0) == 0;
}

std::string render_metrics_http(std::string_view body) {
  std::string out = "HTTP/1.0 200 OK\r\n";
  out += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace hdlts::net
