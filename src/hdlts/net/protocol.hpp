// The serve wire protocol (docs/SERVICE.md): newline-delimited JSON frames,
// one request or response per line, plus one HTTP-flavoured escape hatch
// ("GET /metrics") so a Prometheus scraper can hit the same port.
//
// This header is the *pure* half of the service: parsing a request frame
// into a ParsedRequest and rendering responses to byte-exact strings, with
// no sockets anywhere. The split is what makes the service contract
// testable — tests/net_test.cpp pins golden fixtures for every verb and
// every error code against these functions, so a wire-format regression
// fails a unit test long before the e2e CI leg runs.
//
// Error taxonomy (the `code` field of error responses, mirroring the
// command-dispatch style of document databases: one small closed set the
// client can switch on, with the human detail in `message`):
//   1 MalformedRequest  — frame isn't valid JSON or violates the schema
//   2 OverLimits        — request is well-formed but exceeds a server limit
//   3 QueueFull         — admission control rejected it (tenant queue full,
//                         too many tenants, engine backpressure, draining)
//   4 Internal          — scheduling itself failed (generator threw, ...)
//
// Byte-exactness: responses render with a fixed key order, util::json_escape
// strings and util::json_number (%.17g) doubles, and exactly one trailing
// '\n'. Clients may rely on makespans round-tripping bit-identically to a
// local run of the same engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hdlts/core/online.hpp"
#include "hdlts/core/stream.hpp"
#include "hdlts/sim/problem.hpp"
#include "hdlts/svc/batch_engine.hpp"
#include "hdlts/util/error.hpp"

namespace hdlts::net {

enum class ErrorCode : int {
  kMalformedRequest = 1,
  kOverLimits = 2,
  kQueueFull = 3,
  kInternal = 4,
};

/// Stable wire name ("MalformedRequest", ...) for the `error` field.
std::string_view error_name(ErrorCode code);

/// Server-side admission limits a well-formed request may still exceed
/// (-> kOverLimits). Frame length is enforced earlier by LineFramer but
/// lives here so the whole contract is one struct.
struct Limits {
  std::size_t max_frame_bytes = 1 << 20;
  std::size_t max_tasks = 20000;      ///< generated or inline, per workflow
  std::size_t max_procs = 256;
  std::size_t max_schedulers = 16;    ///< per static submit
  std::size_t max_failures = 64;      ///< per online submit
  std::size_t max_arrivals = 64;      ///< per stream submit
  std::size_t max_workload_bytes = 1 << 20;  ///< inline workload text
};

enum class Verb {
  kSubmit,
  kPing,
  kStats,
  kDrain,
};

/// A named workload generator invocation; the parameter set mirrors
/// `workflow_tool generate` so a submit frame and the CLI speak the same
/// dialect. Materialisation is deferred (make_workload) so the engine can
/// run it on a worker thread instead of the server's dispatcher.
struct GeneratorSpec {
  std::string kind = "random";  ///< random|fft|montage|md|gauss
  std::size_t tasks = 100;      ///< random
  double alpha = 1.0;           ///< random: height/width shape
  std::size_t density = 3;      ///< random: out-degree bound
  std::size_t points = 16;      ///< fft
  std::size_t nodes = 50;       ///< montage
  std::size_t matrix = 8;       ///< gauss
  std::size_t cpus = 4;
  double ccr = 1.0;
  double beta = 0.8;
  double wdag = 50.0;
};

/// Runs the generator (throws InvalidArgument on an unknown kind — parse
/// already rejected those, so a throw here is a caller bug).
sim::Workload make_workload(const GeneratorSpec& spec, std::uint64_t seed);

/// Thrown by parse_request; carries the taxonomy code plus whatever id /
/// tenant could be salvaged from the broken frame, so the server can still
/// correlate the error response for the client.
class ProtocolError : public Error {
 public:
  ProtocolError(ErrorCode code, const std::string& message)
      : Error(message), code_(code) {}

  ErrorCode code() const { return code_; }
  const std::optional<std::uint64_t>& id() const { return id_; }
  const std::string& tenant() const { return tenant_; }

  void set_context(std::optional<std::uint64_t> id, std::string tenant) {
    id_ = id;
    tenant_ = std::move(tenant);
  }

 private:
  ErrorCode code_;
  std::optional<std::uint64_t> id_;
  std::string tenant_;
};

/// A validated request frame. For submits, exactly one of `workload` /
/// `generator` is set for static/online jobs; stream jobs instead carry
/// materialised `arrivals` (streams merge several workloads, so deferring
/// generation buys nothing — the merge itself runs on the engine worker).
struct ParsedRequest {
  Verb verb = Verb::kPing;
  std::optional<std::uint64_t> id;
  std::string tenant = "default";

  svc::BatchJob job = svc::BatchJob::kStatic;
  std::uint64_t seed = 0;
  std::optional<sim::Workload> workload;   ///< inline (workload text format)
  std::optional<GeneratorSpec> generator;
  std::vector<std::string> schedulers;             ///< static
  std::vector<core::ProcFailure> failures;         ///< online
  std::vector<core::StreamArrival> arrivals;       ///< stream
  core::StreamOptions stream_options;              ///< stream
};

/// Parses + validates one request frame. Throws ProtocolError
/// (kMalformedRequest for JSON/schema violations, kOverLimits for limit
/// violations) with id/tenant context attached whenever they were readable.
ParsedRequest parse_request(std::string_view frame, const Limits& limits);

// -- Response rendering (each returns the full frame incl. trailing '\n') --

/// {"ok":false,"code":C,"error":"Name","message":"...","id":I,"tenant":"T"}
/// `id` omitted when nullopt; `tenant` omitted when empty.
std::string render_error(ErrorCode code, std::string_view message,
                         std::optional<std::uint64_t> id,
                         std::string_view tenant);

/// {"ok":true,"op":"ping"}
std::string render_pong();

/// {"ok":true,"op":"drain","draining":true}
std::string render_drain_ack();

/// Counters for the stats verb and the drain-invariant checks in tests.
struct StatsSnapshot {
  std::uint64_t accepted = 0;   ///< requests admitted to a tenant queue
  std::uint64_t rejected = 0;   ///< error responses sent (any code)
  std::uint64_t completed = 0;  ///< submit responses sent
  std::uint64_t active_sessions = 0;
  std::uint64_t queued = 0;     ///< requests currently in tenant queues
  std::uint64_t engine_submitted = 0;
  std::uint64_t engine_completed = 0;
  std::uint64_t engine_cancelled = 0;
  bool draining = false;
};

/// {"ok":true,"op":"stats","accepted":..,...} — fixed key order.
std::string render_stats(const StatsSnapshot& s);

/// One entry of a static submit response's `results` array (no newline):
/// {"scheduler":"S","ok":true,"makespan":M} or
/// {"scheduler":"S","ok":false,"error":"..."}
std::string render_static_entry(std::string_view scheduler, bool ok,
                                double makespan, std::string_view error);

/// {"ok":true,"id":I,"tenant":"T","kind":"static","seed":S,"results":[E,..]}
/// `entries` are pre-rendered render_static_entry values.
std::string render_static_response(std::optional<std::uint64_t> id,
                                   std::string_view tenant, std::uint64_t seed,
                                   const std::vector<std::string>& entries);

/// {"ok":true,...,"kind":"online","seed":S,"completed":B,"makespan":M,
///  "executions":N,"lost_executions":N}
std::string render_online_response(std::optional<std::uint64_t> id,
                                   std::string_view tenant, std::uint64_t seed,
                                   const core::OnlineResult& result);

/// {"ok":true,...,"kind":"stream","seed":S,"makespan":M,"executions":N,
///  "finish":[..],"flow_time":[..]}
std::string render_stream_response(std::optional<std::uint64_t> id,
                                   std::string_view tenant, std::uint64_t seed,
                                   const core::StreamResult& result);

/// True when the first request line is the Prometheus escape hatch
/// ("GET /metrics", optionally followed by " HTTP/1.x").
bool is_metrics_request(std::string_view frame);

/// Wraps an already-rendered Prometheus exposition `body` in a minimal
/// HTTP/1.0 200 response (Content-Type: text/plain; version=0.0.4;
/// Connection: close).
std::string render_metrics_http(std::string_view body);

}  // namespace hdlts::net
