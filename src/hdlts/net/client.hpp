// Blocking client for the serve wire protocol: line-oriented
// request/response over a loopback TCP connection, plus a one-shot
// Prometheus scrape helper. Used by `workflow_tool submit`, the soak
// harness's serve mode, and tests/serve_test.cpp.
//
// The client supports pipelining — send_line N times, then recv_line N
// times — which is how the CI queue-full scenario provokes admission
// rejections deterministically (the server reads a burst faster than the
// single-threaded engine drains it).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "hdlts/net/frame.hpp"
#include "hdlts/net/socket.hpp"

namespace hdlts::net {

class Client {
 public:
  /// Connects to 127.0.0.1:`port` (throws hdlts::Error on failure).
  /// `timeout` bounds each recv_line wait.
  explicit Client(std::uint16_t port,
                  std::chrono::milliseconds timeout =
                      std::chrono::milliseconds(30000));

  /// Sends one request frame (`line` must not contain '\n'; the terminator
  /// is appended). Throws hdlts::Error when the peer is gone.
  void send_line(std::string_view line);

  /// Blocks for the next response frame. Throws hdlts::Error on timeout or
  /// connection loss.
  std::string recv_line();

  /// send_line + recv_line.
  std::string request(std::string_view line);

  /// Closes the connection (also happens on destruction).
  void close();

  /// One-shot scrape on a fresh connection: sends "GET /metrics", strips
  /// the HTTP response headers, returns the Prometheus text body.
  static std::string scrape_metrics(std::uint16_t port,
                                    std::chrono::milliseconds timeout =
                                        std::chrono::milliseconds(30000));

 private:
  Fd fd_;
  LineFramer framer_;
  std::chrono::milliseconds timeout_;
};

}  // namespace hdlts::net
