#include "hdlts/net/frame.hpp"

namespace hdlts::net {

void LineFramer::feed(std::string_view bytes) {
  if (overflowed_) return;  // discard; the connection is doomed anyway
  buffer_.append(bytes);
}

LineFramer::Next LineFramer::next(std::string& frame) {
  if (overflowed_) return Next::kOverflow;
  const std::size_t nl = buffer_.find('\n', scan_from_);
  if (nl == std::string::npos) {
    if (buffer_.size() > max_frame_bytes_) {
      overflowed_ = true;
      buffer_.clear();
      return Next::kOverflow;
    }
    scan_from_ = buffer_.size();
    return Next::kNeedMore;
  }
  std::size_t len = nl;
  if (len > 0 && buffer_[len - 1] == '\r') --len;
  if (len > max_frame_bytes_) {
    overflowed_ = true;
    buffer_.clear();
    return Next::kOverflow;
  }
  frame.assign(buffer_, 0, len);
  buffer_.erase(0, nl + 1);
  scan_from_ = 0;
  return Next::kFrame;
}

}  // namespace hdlts::net
