#include "hdlts/net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <sstream>
#include <utility>

#include "hdlts/net/frame.hpp"
#include "hdlts/obs/prometheus.hpp"
#include "hdlts/util/error.hpp"

namespace hdlts::net {

namespace {

// Same shape as the engine's request-latency buckets, but wider: service
// latency includes queueing, so the tail stretches under load.
constexpr std::array<double, 13> kServeLatencyBoundsMs = {
    0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 5000};

double elapsed_ms(std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

/// One connected client. Owned by sessions_; only the event loop creates or
/// destroys Sessions, so a destroyed session's responses are counted as
/// orphaned rather than racing the callback threads.
struct Server::Session {
  std::uint64_t id = 0;
  Fd fd;
  LineFramer framer;
  std::string outbox;
  std::size_t out_offset = 0;  ///< bytes of outbox already sent
  bool closing = false;        ///< flush outbox, then close (metrics, fatal)
  std::size_t inflight = 0;    ///< admitted submits awaiting a response
  std::chrono::steady_clock::time_point last_read;
  std::chrono::steady_clock::time_point last_write;

  Session(std::uint64_t session_id, Fd socket, std::size_t max_frame)
      : id(session_id), fd(std::move(socket)), framer(max_frame) {}
};

/// One admitted submit: owns everything the engine request points at until
/// the final callback renders the response.
struct Server::Pending {
  std::uint64_t ticket = 0;
  std::uint64_t session = 0;
  std::optional<std::uint64_t> id;
  std::string tenant;
  svc::BatchJob job = svc::BatchJob::kStatic;
  std::uint64_t seed = 0;
  svc::WorkloadFn workload_fn;
  std::vector<std::string> schedulers;
  std::vector<core::ProcFailure> failures;
  std::vector<core::StreamArrival> arrivals;
  core::StreamOptions stream_options;
  std::vector<std::string> entries;  ///< static results, in scheduler order
  std::chrono::steady_clock::time_point admitted;
};

ServerOptions server_options_from_config(util::Config& config) {
  ServerOptions options;
  options.port = static_cast<std::uint16_t>(config.get_int("port", 0));
  options.engine_threads =
      static_cast<std::size_t>(config.get_int("threads", 0));
  options.engine_queue_capacity =
      static_cast<std::size_t>(config.get_int("queue_cap", 256));
  options.fair.per_tenant_capacity =
      static_cast<std::size_t>(config.get_int("tenant_queue_cap", 64));
  options.fair.quantum =
      static_cast<std::uint64_t>(config.get_int("quantum", 1));
  options.fair.default_weight =
      static_cast<std::uint64_t>(config.get_int("default_weight", 1));
  options.fair.max_tenants =
      static_cast<std::size_t>(config.get_int("max_tenants", 1024));
  for (const auto& pair : config.get_list("tenant_weights", "")) {
    const auto colon = pair.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= pair.size()) {
      throw InvalidArgument("tenant_weights expects name:weight pairs, got '" +
                            pair + "'");
    }
    std::uint64_t weight = 0;
    try {
      weight = std::stoull(pair.substr(colon + 1));
    } catch (const std::exception&) {
      throw InvalidArgument("bad tenant weight in '" + pair + "'");
    }
    options.fair.weights.emplace_back(pair.substr(0, colon), weight);
  }
  options.max_sessions =
      static_cast<std::size_t>(config.get_int("max_sessions", 64));
  options.read_timeout =
      std::chrono::milliseconds(config.get_int("read_timeout_ms", 30000));
  options.write_timeout =
      std::chrono::milliseconds(config.get_int("write_timeout_ms", 30000));
  options.limits.max_frame_bytes =
      static_cast<std::size_t>(config.get_int("max_frame_kb", 1024)) * 1024;
  options.limits.max_tasks =
      static_cast<std::size_t>(config.get_int("max_tasks", 20000));
  options.limits.max_procs =
      static_cast<std::size_t>(config.get_int("max_procs", 256));
  options.limits.max_schedulers =
      static_cast<std::size_t>(config.get_int("max_schedulers", 16));
  options.limits.max_failures =
      static_cast<std::size_t>(config.get_int("max_failures", 64));
  options.limits.max_arrivals =
      static_cast<std::size_t>(config.get_int("max_arrivals", 64));
  return options;
}

Server::Server(const sched::Registry& registry, ServerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      queue_(options_.fair) {
  listener_ = listen_tcp(options_.port, &port_);
  set_nonblocking(listener_.get());

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw Error(errno_message("pipe"));
  wake_r_ = Fd(pipe_fds[0]);
  wake_w_ = Fd(pipe_fds[1]);
  set_nonblocking(wake_r_.get());
  set_nonblocking(wake_w_.get());
  wake_fd_.store(wake_w_.get(), std::memory_order_release);

  auto& reg = obs::MetricRegistry::global();
  m_connections_ = &reg.counter("svc.serve.connections");
  m_accepted_ = &reg.counter("svc.serve.accepted");
  m_rejected_ = &reg.counter("svc.serve.rejected");
  m_completed_ = &reg.counter("svc.serve.completed");
  m_orphaned_ = &reg.counter("svc.serve.orphaned");
  m_queue_full_ = &reg.counter("svc.serve.queue_full");
  m_active_ = &reg.gauge("svc.serve.active_connections");
  m_queue_depth_ = &reg.gauge("svc.serve.queue_depth");
  m_latency_ = &reg.histogram("svc.serve.latency_ms", kServeLatencyBoundsMs);

  svc::BatchEngineOptions engine_options;
  engine_options.threads = options_.engine_threads;
  engine_options.queue_capacity = options_.engine_queue_capacity;
  engine_ = std::make_unique<svc::BatchEngine>(
      registry_,
      [this](const svc::BatchResult& result) { on_engine_result(result); },
      engine_options);
}

Server::~Server() {
  if (started_) {
    request_drain();
    wait();
  }
  // Engine destruction drains its (already empty) queue.
}

void Server::start() {
  if (started_) throw Error("Server::start called twice");
  started_ = true;
  loop_thread_ = std::thread([this] { loop(); });
  dispatch_thread_ = std::thread([this] { dispatch(); });
}

void Server::request_drain() {
  drain_flag_.store(true, std::memory_order_release);
  wake();
  dispatch_cv_.notify_all();
}

void Server::notify_drain_async() noexcept {
  drain_flag_.store(true, std::memory_order_release);
  const int fd = wake_fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 1;
    // A full pipe already guarantees a wakeup; the result is irrelevant.
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return stopped_; });
  lock.unlock();
  if (loop_thread_.joinable()) loop_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
}

void Server::drain() {
  request_drain();
  wait();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.orphaned = orphaned_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.active_sessions = sessions_.size();
  s.queued = queue_.size();
  s.draining = draining_;
  return s;
}

svc::BatchEngineStats Server::engine_stats() const { return engine_->stats(); }

void Server::wake() noexcept {
  const int fd = wake_fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}

StatsSnapshot Server::snapshot_locked() const {
  StatsSnapshot s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.active_sessions = sessions_.size();
  s.queued = queue_.size();
  const auto engine = engine_->stats();
  s.engine_submitted = engine.submitted;
  s.engine_completed = engine.completed;
  s.engine_cancelled = engine.cancelled;
  s.draining = draining_;
  return s;
}

void Server::set_tenant_depth_locked(const std::string& tenant) {
  auto it = tenant_depth_.find(tenant);
  if (it == tenant_depth_.end()) {
    // Lazy per-tenant gauge; bounded by fair.max_tenants. The registry has
    // its own mutex and never takes ours, so the nesting cannot cycle.
    it = tenant_depth_
             .emplace(tenant, &obs::MetricRegistry::global().gauge(
                                  "svc.serve.tenant_queue_depth." + tenant))
             .first;
  }
  it->second->set(static_cast<double>(queue_.depth(tenant)));
  m_queue_depth_->set(static_cast<double>(queue_.size()));
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void Server::loop() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_sessions;  // parallel to fds, 0 = not a session
  for (;;) {
    fds.clear();
    fd_sessions.clear();
    bool listening = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (drain_flag_.load(std::memory_order_acquire)) begin_drain_locked();

      // Exit once the engine is fully drained and every response that still
      // has a session is flushed (sessions that cannot flush are closed by
      // the write timeout below, so this converges).
      if (draining_ && engine_shut_) {
        bool flushed = true;
        for (const auto& [id, session] : sessions_) {
          if (session->out_offset < session->outbox.size()) {
            flushed = false;
            break;
          }
        }
        if (flushed && inflight_.empty()) {
          sessions_.clear();
          m_active_->set(0.0);
          stopped_ = true;
          done_cv_.notify_all();
          return;
        }
      }

      fds.push_back({wake_r_.get(), POLLIN, 0});
      fd_sessions.push_back(0);
      if (!draining_ && listener_.valid() &&
          sessions_.size() < options_.max_sessions) {
        fds.push_back({listener_.get(), POLLIN, 0});
        fd_sessions.push_back(0);
        listening = true;
      }
      for (const auto& [id, session] : sessions_) {
        short events = POLLIN;
        if (session->out_offset < session->outbox.size()) events |= POLLOUT;
        fds.push_back({session->fd.get(), events, 0});
        fd_sessions.push_back(id);
      }
    }

    // 100ms tick so timeouts and drain progress are checked even when idle.
    ::poll(fds.data(), fds.size(), 100);

    std::lock_guard<std::mutex> lock(mu_);
    if ((fds[0].revents & POLLIN) != 0) {
      std::array<char, 256> sink;
      while (::read(wake_r_.get(), sink.data(), sink.size()) > 0) {
      }
    }
    if (listening && (fds[1].revents & POLLIN) != 0) accept_sessions_locked();

    for (std::size_t i = listening ? 2 : 1; i < fds.size(); ++i) {
      const std::uint64_t id = fd_sessions[i];
      if (id == 0) continue;
      const auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;  // closed earlier this pass
      Session& session = *it->second;
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        m_active_->set(static_cast<double>(sessions_.size() - 1));
        sessions_.erase(it);
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) write_session_locked(session);
      if (sessions_.find(id) == sessions_.end()) continue;
      if ((fds[i].revents & (POLLIN | POLLHUP)) != 0) {
        read_session_locked(session);
      }
    }

    enforce_timeouts_locked(std::chrono::steady_clock::now());
  }
}

void Server::accept_sessions_locked() {
  for (;;) {
    if (sessions_.size() >= options_.max_sessions) return;
    Fd fd(::accept(listener_.get(), nullptr, nullptr));
    if (!fd.valid()) return;  // EAGAIN or transient error: next poll round
    set_nonblocking(fd.get());
    const std::uint64_t id = next_session_++;
    auto session = std::make_unique<Session>(id, std::move(fd),
                                             options_.limits.max_frame_bytes);
    const auto now = std::chrono::steady_clock::now();
    session->last_read = now;
    session->last_write = now;
    sessions_.emplace(id, std::move(session));
    connections_.fetch_add(1, std::memory_order_relaxed);
    m_connections_->add();
    m_active_->set(static_cast<double>(sessions_.size()));
  }
}

void Server::write_session_locked(Session& session) {
  while (session.out_offset < session.outbox.size()) {
    const auto n = ::send(session.fd.get(),
                          session.outbox.data() + session.out_offset,
                          session.outbox.size() - session.out_offset,
                          MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      m_active_->set(static_cast<double>(sessions_.size() - 1));
      sessions_.erase(session.id);
      return;
    }
    session.out_offset += static_cast<std::size_t>(n);
    session.last_write = std::chrono::steady_clock::now();
  }
  session.outbox.clear();
  session.out_offset = 0;
  if (session.closing) {
    m_active_->set(static_cast<double>(sessions_.size() - 1));
    sessions_.erase(session.id);
  }
}

void Server::read_session_locked(Session& session) {
  std::array<char, 65536> buffer;
  bool eof = false;
  for (;;) {
    const long n = recv_some(session.fd.get(), buffer.data(), buffer.size());
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      m_active_->set(static_cast<double>(sessions_.size() - 1));
      sessions_.erase(session.id);
      return;
    }
    if (n == 0) {
      // Peer closed. Complete frames already buffered are still processed
      // below (a frame and the FIN often land in one read batch), but the
      // session is dropped afterwards: the peer cannot receive responses,
      // so its pending work is counted orphaned when it completes.
      eof = true;
      break;
    }
    session.last_read = std::chrono::steady_clock::now();
    session.framer.feed(std::string_view(buffer.data(),
                                         static_cast<std::size_t>(n)));
    if (static_cast<std::size_t>(n) < buffer.size()) break;
  }

  // handle_frame_locked (and the write flush it triggers) can erase the
  // session, so re-find it from the id every iteration instead of holding a
  // reference across the call.
  const std::uint64_t sid = session.id;
  std::string frame;
  for (;;) {
    const auto it = sessions_.find(sid);
    if (it == sessions_.end()) return;
    Session& live = *it->second;
    if (live.closing) break;  // metrics responses take over the stream
    const auto next = live.framer.next(frame);
    if (next == LineFramer::Next::kNeedMore) break;
    if (next == LineFramer::Next::kOverflow) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      m_rejected_->add();
      live.outbox += render_error(ErrorCode::kOverLimits,
                                  "frame exceeds max_frame_bytes",
                                  std::nullopt, {});
      live.closing = true;
      write_session_locked(live);
      break;
    }
    handle_frame_locked(live, frame);
  }
  if (eof) {
    const auto it = sessions_.find(sid);
    if (it != sessions_.end()) {
      m_active_->set(static_cast<double>(sessions_.size() - 1));
      sessions_.erase(it);
    }
  }
}

void Server::handle_frame_locked(Session& session, const std::string& frame) {
  if (frame.empty()) return;  // blank lines are keep-alive noise
  if (is_metrics_request(frame)) {
    std::ostringstream body;
    obs::prometheus_render(obs::MetricRegistry::global(), body);
    session.outbox += render_metrics_http(body.str());
    session.closing = true;
    write_session_locked(session);
    return;
  }
  try {
    ParsedRequest request = parse_request(frame, options_.limits);
    switch (request.verb) {
      case Verb::kPing:
        session.outbox += render_pong();
        break;
      case Verb::kStats:
        session.outbox += render_stats(snapshot_locked());
        break;
      case Verb::kDrain:
        session.outbox += render_drain_ack();
        begin_drain_locked();
        break;
      case Verb::kSubmit:
        handle_submit_locked(session, std::move(request));
        break;
    }
  } catch (const ProtocolError& e) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    m_rejected_->add();
    session.outbox += render_error(e.code(), e.what(), e.id(), e.tenant());
  } catch (const std::exception& e) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    m_rejected_->add();
    session.outbox +=
        render_error(ErrorCode::kInternal, e.what(), std::nullopt, {});
  }
  write_session_locked(session);
}

void Server::handle_submit_locked(Session& session, ParsedRequest&& request) {
  if (draining_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    m_rejected_->add();
    m_queue_full_->add();
    session.outbox += render_error(ErrorCode::kQueueFull, "server is draining",
                                   request.id, request.tenant);
    return;
  }
  auto pending = std::make_unique<Pending>();
  pending->session = session.id;
  pending->id = request.id;
  pending->tenant = request.tenant;
  pending->job = request.job;
  pending->seed = request.seed;
  pending->schedulers = std::move(request.schedulers);
  pending->failures = std::move(request.failures);
  pending->arrivals = std::move(request.arrivals);
  pending->stream_options = request.stream_options;
  pending->admitted = std::chrono::steady_clock::now();
  if (request.workload.has_value()) {
    // Inline workload: the generator closure returns a copy, so the engine
    // worker still owns its own instance (CSR freezing mutates nothing, but
    // the recycled worker workload slot wants a value).
    pending->workload_fn = [workload = std::move(*request.workload)](
                               std::uint64_t) { return workload; };
  } else if (request.generator.has_value()) {
    // Deferred generation: building the DAG and freezing the CSR both run on
    // the engine worker, keeping the event loop parse-only.
    pending->workload_fn = [spec = std::move(*request.generator)](
                               std::uint64_t seed) {
      return make_workload(spec, seed);
    };
  }

  const std::string tenant = pending->tenant;
  const auto result = queue_.push(tenant, std::move(pending));
  switch (result) {
    case FairQueue<std::unique_ptr<Pending>>::Push::kOk:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      m_accepted_->add();
      session.inflight += 1;
      set_tenant_depth_locked(tenant);
      dispatch_cv_.notify_one();
      break;
    case FairQueue<std::unique_ptr<Pending>>::Push::kTenantFull:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      m_rejected_->add();
      m_queue_full_->add();
      session.outbox += render_error(ErrorCode::kQueueFull,
                                     "tenant queue full", request.id, tenant);
      break;
    case FairQueue<std::unique_ptr<Pending>>::Push::kTooManyTenants:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      m_rejected_->add();
      m_queue_full_->add();
      session.outbox += render_error(ErrorCode::kQueueFull, "too many tenants",
                                     request.id, tenant);
      break;
  }
}

void Server::begin_drain_locked() {
  if (draining_) return;
  draining_ = true;
  listener_.reset();
  dispatch_cv_.notify_all();
}

void Server::enforce_timeouts_locked(
    std::chrono::steady_clock::time_point now) {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session& session = *it->second;
    bool close = false;
    const bool has_output = session.out_offset < session.outbox.size();
    if (options_.write_timeout.count() > 0 && has_output &&
        now - session.last_write > options_.write_timeout) {
      close = true;  // stalled reader
    }
    if (options_.read_timeout.count() > 0 && !has_output &&
        session.inflight == 0 && !session.closing &&
        now - session.last_read > options_.read_timeout) {
      close = true;  // idle
    }
    if (close) {
      it = sessions_.erase(it);
      m_active_->set(static_cast<double>(sessions_.size()));
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

void Server::dispatch() {
  for (;;) {
    svc::BatchRequest request;
    Pending* raw = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      dispatch_cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      if (queue_.empty()) {
        if (draining_) break;
        continue;
      }
      std::unique_ptr<Pending> pending;
      std::string tenant;
      queue_.pop(&tenant, &pending);
      set_tenant_depth_locked(tenant);
      raw = pending.get();
      raw->ticket = next_ticket_++;
      inflight_.emplace(raw->ticket, std::move(pending));
      request.id = raw->ticket;
      request.seed = raw->seed;
      request.job = raw->job;
      if (raw->job == svc::BatchJob::kStream) {
        request.arrivals = &raw->arrivals;
        request.stream_options = raw->stream_options;
      } else {
        request.generator = &raw->workload_fn;
        request.schedulers = raw->schedulers;
        request.failures = raw->failures;
      }
    }
    // Blocking submit OUTSIDE the mutex: engine backpressure stalls only the
    // dispatcher (the tenant queues keep absorbing), and result callbacks
    // are free to take the mutex meanwhile.
    if (!engine_->submit(request)) {
      // Engine closed under us (only possible during destruction bugs);
      // answer rather than hang the client.
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = inflight_.find(request.id);
      if (it != inflight_.end()) {
        const Pending& p = *it->second;
        completed_.fetch_add(1, std::memory_order_relaxed);
        m_completed_->add();
        deliver_locked(p.session,
                       render_error(ErrorCode::kInternal,
                                    "engine rejected request", p.id,
                                    p.tenant));
        inflight_.erase(it);
      }
      wake();
    }
  }
  // Drain tail: every queued request was submitted; kDrain blocks until the
  // engine finishes them all (callbacks included), so after this the
  // inflight map is empty and every response is in an outbox.
  engine_->shutdown(svc::BatchEngine::Drain::kDrain);
  {
    std::lock_guard<std::mutex> lock(mu_);
    engine_shut_ = true;
  }
  wake();
}

// ---------------------------------------------------------------------------
// Engine result callback (runs on engine workers)
// ---------------------------------------------------------------------------

void Server::on_engine_result(const svc::BatchResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = inflight_.find(result.id);
  if (it == inflight_.end()) return;  // unreachable: tickets are unique
  Pending& pending = *it->second;
  std::string frame;
  if (pending.job == svc::BatchJob::kStatic) {
    pending.entries.push_back(render_static_entry(
        result.scheduler, result.ok, result.makespan, result.error));
    if (pending.entries.size() < pending.schedulers.size()) return;
    frame = render_static_response(pending.id, pending.tenant, pending.seed,
                                   pending.entries);
  } else if (pending.job == svc::BatchJob::kOnline) {
    frame = result.ok
                ? render_online_response(pending.id, pending.tenant,
                                         pending.seed, *result.online)
                : render_error(ErrorCode::kInternal, result.error, pending.id,
                               pending.tenant);
  } else {
    frame = result.ok
                ? render_stream_response(pending.id, pending.tenant,
                                         pending.seed, *result.stream)
                : render_error(ErrorCode::kInternal, result.error, pending.id,
                               pending.tenant);
  }
  m_latency_->observe(
      elapsed_ms(pending.admitted, std::chrono::steady_clock::now()));
  completed_.fetch_add(1, std::memory_order_relaxed);
  m_completed_->add();
  const std::uint64_t session_id = pending.session;
  inflight_.erase(it);
  deliver_locked(session_id, frame);
  wake();
}

void Server::deliver_locked(std::uint64_t session_id,
                            const std::string& frame) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    orphaned_.fetch_add(1, std::memory_order_relaxed);
    m_orphaned_->add();
    return;
  }
  it->second->outbox += frame;
  if (it->second->inflight > 0) it->second->inflight -= 1;
}

}  // namespace hdlts::net
