// The serve daemon (docs/SERVICE.md): a loopback TCP server that accepts
// newline-delimited JSON scheduling requests, admits them through per-tenant
// weighted-fair queues (net/fair_queue.hpp), executes them on a
// svc::BatchEngine, and streams byte-exact responses back per session.
//
// Threading (three threads plus the engine's workers):
//   * the event loop: poll() over the listener, a self-pipe, and every
//     session socket (all non-blocking). It accepts, frames, parses, admits
//     (FairQueue push or an immediate error response), flushes outboxes, and
//     enforces read/write timeouts. It is the only thread that creates or
//     destroys sessions.
//   * the dispatcher: pops requests in DRR order and feeds them to
//     BatchEngine::submit(), which *blocks* under engine backpressure — the
//     tenant queues are the admission point, the engine ring is just the
//     pipeline, so a slow engine surfaces to clients as per-tenant QueueFull
//     rather than head-of-line blocking inside the engine.
//   * engine workers call the result callback, which renders the response
//     (protocol.hpp), appends it to the owning session's outbox under the
//     server mutex, and wakes the event loop via the self-pipe.
//
// Graceful drain (request_drain(), the drain verb, or SIGTERM via
// notify_drain_async): the listener closes, new submits are rejected with
// QueueFull("server is draining"), the dispatcher finishes the queued
// backlog and shuts the engine down in kDrain mode, the loop flushes every
// outbox, and wait() returns. Every admitted request gets exactly one
// rendered response — stats().accepted == completed after drain, with
// orphaned counting the subset whose session had already disconnected.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "hdlts/net/fair_queue.hpp"
#include "hdlts/net/protocol.hpp"
#include "hdlts/net/socket.hpp"
#include "hdlts/obs/metrics.hpp"
#include "hdlts/sched/registry.hpp"
#include "hdlts/svc/batch_engine.hpp"
#include "hdlts/util/config.hpp"

namespace hdlts::net {

struct ServerOptions {
  /// Loopback port to listen on; 0 = kernel-assigned (read it back with
  /// port(), which is valid right after construction).
  std::uint16_t port = 0;
  /// BatchEngine workers (0 = hardware concurrency) and ring capacity.
  std::size_t engine_threads = 0;
  std::size_t engine_queue_capacity = 256;
  Limits limits;
  FairQueueOptions fair;
  std::size_t max_sessions = 64;
  /// Close a session with no traffic, no queued work, and nothing to write
  /// for this long (0 = never).
  std::chrono::milliseconds read_timeout{30000};
  /// Close a session whose outbox made no progress for this long (0 =
  /// never) — a stalled reader must not pin response buffers forever.
  std::chrono::milliseconds write_timeout{30000};
};

/// Parses the serve config dialect (see docs/SERVICE.md):
///   port, threads, queue_cap, tenant_queue_cap, quantum, default_weight,
///   tenant_weights (name:weight pairs joined by '+', e.g. "alice:4+bob:1"),
///   max_tenants, max_sessions, read_timeout_ms, write_timeout_ms,
///   max_frame_kb, max_tasks, max_procs, max_schedulers, max_failures,
///   max_arrivals
/// Keys the caller doesn't recognise remain in `config` (unused_keys()).
ServerOptions server_options_from_config(util::Config& config);

/// Monotone service totals; after a drain, accepted == completed and
/// queued == 0 (orphaned counts the completed responses whose session had
/// already disconnected).
struct ServerStats {
  std::uint64_t connections = 0;  ///< sessions ever accepted
  std::uint64_t active_sessions = 0;
  std::uint64_t accepted = 0;   ///< submits admitted to a tenant queue
  std::uint64_t rejected = 0;   ///< error responses sent before admission
  std::uint64_t completed = 0;  ///< submit responses rendered (incl. Internal)
  std::uint64_t orphaned = 0;   ///< responses whose session was gone
  std::uint64_t queued = 0;     ///< currently waiting in tenant queues
  bool draining = false;
};

class Server {
 public:
  /// Binds and listens immediately (throws hdlts::Error on failure) but
  /// serves nothing until start(). `registry` must outlive the server and
  /// its factories must be callable concurrently.
  Server(const sched::Registry& registry, ServerOptions options = {});
  /// Drains (if still running) and joins.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return port_; }

  /// Spawns the event loop and dispatcher. start() twice is an error.
  void start();

  /// Begins a graceful drain; non-blocking, idempotent.
  void request_drain();

  /// Async-signal-safe drain trigger (atomic flag + self-pipe write), for
  /// SIGTERM handlers.
  void notify_drain_async() noexcept;

  /// Blocks until the drain completes and both threads exit.
  void wait();

  /// request_drain() + wait().
  void drain();

  ServerStats stats() const;

  /// Engine totals (for the stats verb and the drain-invariant tests).
  svc::BatchEngineStats engine_stats() const;

 private:
  struct Session;
  struct Pending;

  void loop();
  void dispatch();
  void wake() noexcept;

  void accept_sessions_locked();
  void read_session_locked(Session& session);
  void write_session_locked(Session& session);
  void handle_frame_locked(Session& session, const std::string& frame);
  void handle_submit_locked(Session& session, ParsedRequest&& request);
  void begin_drain_locked();
  void enforce_timeouts_locked(std::chrono::steady_clock::time_point now);
  void deliver_locked(std::uint64_t session_id, const std::string& frame);
  void set_tenant_depth_locked(const std::string& tenant);
  StatsSnapshot snapshot_locked() const;

  void on_engine_result(const svc::BatchResult& result);

  const sched::Registry& registry_;
  ServerOptions options_;
  std::uint16_t port_ = 0;
  Fd listener_;
  Fd wake_r_;
  Fd wake_w_;
  std::unique_ptr<svc::BatchEngine> engine_;

  std::thread loop_thread_;
  std::thread dispatch_thread_;
  bool started_ = false;

  mutable std::mutex mu_;
  std::condition_variable dispatch_cv_;
  std::condition_variable done_cv_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_ = 1;
  FairQueue<std::unique_ptr<Pending>> queue_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Pending>> inflight_;
  std::uint64_t next_ticket_ = 1;
  bool draining_ = false;
  bool engine_shut_ = false;
  bool stopped_ = false;
  std::atomic<bool> drain_flag_{false};
  std::atomic<int> wake_fd_{-1};  ///< self-pipe write end, for the handler

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> orphaned_{0};

  obs::Counter* m_connections_ = nullptr;
  obs::Counter* m_accepted_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_orphaned_ = nullptr;
  obs::Counter* m_queue_full_ = nullptr;
  obs::Gauge* m_active_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Histogram* m_latency_ = nullptr;
  std::map<std::string, obs::Gauge*> tenant_depth_;  // guarded by mu_
};

}  // namespace hdlts::net
