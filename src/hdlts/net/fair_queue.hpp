// Per-tenant weighted-fair admission queue: bounded FIFO per tenant,
// deficit-round-robin (DRR) dispatch across tenants (docs/SERVICE.md).
//
// Why DRR: the serve daemon admits submissions from many tenants into one
// dispatcher that feeds svc::BatchEngine. A plain shared FIFO would let one
// flooding tenant occupy the whole pipeline; per-tenant queues + DRR bound
// both the memory (per_tenant_capacity each) and the bandwidth share (a
// tenant with weight w gets w units of service per round, so a light tenant
// is delayed by at most one round of the heavy tenants' quanta, never by
// their whole backlog). Every request costs one unit — requests are
// independent scheduling problems of broadly similar size, and a cheaper
// unit model keeps the dispatch order exactly reproducible in tests
// (tests/net_test.cpp pins the full DRR interleaving).
//
// The queue is NOT thread-safe: the server serialises push (event loop) and
// pop (dispatcher) under its own mutex, and the tests drive it single
// threaded for determinism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hdlts/util/error.hpp"

namespace hdlts::net {

struct FairQueueOptions {
  /// Bound on each tenant's FIFO; pushes beyond it are rejected (the
  /// admission-control "queue full" error).
  std::size_t per_tenant_capacity = 64;
  /// Service units added to a tenant's deficit per DRR round, multiplied by
  /// the tenant's weight. 1 is the finest-grained (most interleaved) rate.
  std::uint64_t quantum = 1;
  /// Weight for tenants not named in `weights` (>= 1).
  std::uint64_t default_weight = 1;
  /// Per-tenant weight overrides (>= 1 each).
  std::vector<std::pair<std::string, std::uint64_t>> weights;
  /// Bound on distinct tenants ever seen (tenant state persists so weights
  /// and deficits survive queue-empty periods).
  std::size_t max_tenants = 1024;
};

template <typename T>
class FairQueue {
 public:
  enum class Push {
    kOk,
    kTenantFull,      ///< tenant's FIFO at capacity
    kTooManyTenants,  ///< would create a tenant beyond max_tenants
  };

  explicit FairQueue(FairQueueOptions options) : options_(std::move(options)) {
    if (options_.per_tenant_capacity == 0) {
      throw InvalidArgument("FairQueue per_tenant_capacity must be >= 1");
    }
    if (options_.quantum == 0 || options_.default_weight == 0) {
      throw InvalidArgument("FairQueue quantum and weights must be >= 1");
    }
    for (const auto& [name, weight] : options_.weights) {
      if (weight == 0) {
        throw InvalidArgument("FairQueue weight for '" + name +
                              "' must be >= 1");
      }
    }
  }

  Push push(std::string_view tenant, T item) {
    Tenant* t = find_tenant(tenant);
    if (t == nullptr) {
      if (tenants_.size() >= options_.max_tenants) {
        return Push::kTooManyTenants;
      }
      t = create_tenant(tenant);
    }
    if (t->queue.size() >= options_.per_tenant_capacity) {
      return Push::kTenantFull;
    }
    t->queue.push_back(std::move(item));
    if (!t->active) {
      t->active = true;
      active_.push_back(t);
    }
    ++total_;
    return Push::kOk;
  }

  /// Pops the next item in DRR order; false when the queue is empty.
  bool pop(std::string* tenant_out, T* item_out) {
    if (total_ == 0) return false;
    for (;;) {
      Tenant& t = *active_.front();
      if (!t.topped) {
        t.deficit += options_.quantum * t.weight;
        t.topped = true;
      }
      if (t.deficit >= 1 && !t.queue.empty()) {
        t.deficit -= 1;
        if (tenant_out != nullptr) *tenant_out = t.name;
        *item_out = std::move(t.queue.front());
        t.queue.pop_front();
        --total_;
        if (t.queue.empty()) deactivate_front();
        return true;
      }
      // Deficit exhausted (or the queue drained): end this tenant's turn.
      if (t.queue.empty()) {
        deactivate_front();
      } else {
        t.topped = false;
        active_.push_back(&t);
        active_.pop_front();
      }
    }
  }

  std::size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// Queued items for one tenant (0 for tenants never seen).
  std::size_t depth(std::string_view tenant) const {
    const auto it = tenants_.find(std::string(tenant));
    return it == tenants_.end() ? 0 : it->second->queue.size();
  }

  /// The weight a tenant gets (configured override or the default).
  std::uint64_t weight_of(std::string_view tenant) const {
    for (const auto& [name, weight] : options_.weights) {
      if (name == tenant) return weight;
    }
    return options_.default_weight;
  }

  std::size_t num_tenants() const { return tenants_.size(); }

  /// (tenant, queued depth) snapshot in tenant-name order.
  std::vector<std::pair<std::string, std::size_t>> depths() const {
    std::vector<std::pair<std::string, std::size_t>> out;
    out.reserve(tenants_.size());
    for (const auto& [name, t] : tenants_) {
      out.emplace_back(name, t->queue.size());
    }
    return out;
  }

 private:
  struct Tenant {
    std::string name;
    std::uint64_t weight = 1;
    std::uint64_t deficit = 0;
    bool topped = false;  ///< deficit already topped up for the current turn
    bool active = false;  ///< member of active_
    std::deque<T> queue;
  };

  Tenant* find_tenant(std::string_view name) {
    const auto it = tenants_.find(std::string(name));
    return it == tenants_.end() ? nullptr : it->second.get();
  }

  Tenant* create_tenant(std::string_view name) {
    auto t = std::make_unique<Tenant>();
    t->name = std::string(name);
    t->weight = weight_of(name);
    Tenant* raw = t.get();
    tenants_.emplace(raw->name, std::move(t));
    return raw;
  }

  /// Removes the (drained) front tenant from the rotation; an empty tenant
  /// carries no deficit into its next busy period (standard DRR).
  void deactivate_front() {
    Tenant& t = *active_.front();
    t.deficit = 0;
    t.topped = false;
    t.active = false;
    active_.pop_front();
  }

  FairQueueOptions options_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::deque<Tenant*> active_;
  std::size_t total_ = 0;
};

}  // namespace hdlts::net
