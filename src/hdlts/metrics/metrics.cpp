#include "hdlts/metrics/metrics.hpp"

#include <algorithm>
#include <limits>

#include "hdlts/graph/algorithms.hpp"

namespace hdlts::metrics {

double min_cost_critical_path(const sim::Problem& problem) {
  const auto& g = problem.graph();
  const auto order = graph::topological_order(g);
  std::vector<double> best(g.num_tasks(), 0.0);
  double cp = 0.0;
  for (const graph::TaskId v : order) {
    double from_parents = 0.0;
    for (const graph::Adjacent& p : g.parents(v)) {
      from_parents = std::max(from_parents, best[p.task]);
    }
    best[v] = from_parents + problem.costs().min(v);
    cp = std::max(cp, best[v]);
  }
  return cp;
}

double slr(const sim::Problem& problem, const sim::Schedule& schedule) {
  const double denom = min_cost_critical_path(problem);
  if (denom <= 0.0) {
    throw InvalidArgument("SLR undefined: critical path has zero cost");
  }
  return schedule.makespan() / denom;
}

double best_sequential_time(const sim::Problem& problem) {
  double best = std::numeric_limits<double>::infinity();
  for (const platform::ProcId p : problem.procs()) {
    double total = 0.0;
    for (graph::TaskId v = 0; v < problem.num_tasks(); ++v) {
      total += problem.exec_time(v, p);
    }
    best = std::min(best, total);
  }
  return best;
}

double speedup(const sim::Problem& problem, const sim::Schedule& schedule) {
  const double span = schedule.makespan();
  if (span <= 0.0) {
    throw InvalidArgument("speedup undefined: zero makespan");
  }
  return best_sequential_time(problem) / span;
}

double efficiency(const sim::Problem& problem, const sim::Schedule& schedule) {
  return speedup(problem, schedule) /
         static_cast<double>(problem.procs().size());
}

double makespan_lower_bound(const sim::Problem& problem) {
  double total_min_work = 0.0;
  for (graph::TaskId v = 0; v < problem.num_tasks(); ++v) {
    total_min_work += problem.costs().min(v);
  }
  const double work_bound =
      total_min_work / static_cast<double>(problem.procs().size());
  return std::max(min_cost_critical_path(problem), work_bound);
}

}  // namespace hdlts::metrics
