#include "hdlts/metrics/experiment.hpp"

#include <algorithm>
#include <limits>

#include "hdlts/metrics/energy.hpp"
#include "hdlts/metrics/metrics.hpp"
#include "hdlts/obs/metrics.hpp"
#include "hdlts/obs/span.hpp"
#include "hdlts/svc/batch_engine.hpp"
#include "hdlts/util/rng.hpp"

namespace hdlts::metrics {

namespace {

struct CellResult {
  double slr = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
  double makespan = 0.0;
  double energy = 0.0;
  bool missed_deadline = false;
};

/// Fills the multi-objective cell fields; one body for the serial and
/// batched paths so their doubles match bitwise. The deadline is
/// scheduler-independent (a function of the problem alone), so every
/// scheduler races the same bound on a given repetition.
void fill_objectives(const sim::Problem& problem, const sim::Schedule& schedule,
                     double deadline_factor, CellResult& cell) {
  cell.energy = energy(problem, schedule).total();
  cell.missed_deadline =
      deadline_factor > 0.0 &&
      cell.makespan > deadline_factor * makespan_lower_bound(problem);
}

/// Shared rep runner: fills `cells` (rep-major) or records a failure.
///
/// With a pool the repetitions run through svc::BatchEngine (one request per
/// repetition, carrying the workload factory and the derived seed), whose
/// drain loops occupy the caller's otherwise-idle pool; each engine worker
/// caches its scheduler instances, so construction stays hoisted out of the
/// repetition loop exactly as in the serial path. Results are keyed by
/// (repetition, scheduler index), so the cells are identical regardless of
/// worker interleaving.
void run_repetitions(const WorkloadFactory& factory,
                     const std::vector<std::string>& scheduler_names,
                     const sched::Registry& registry,
                     const CompareOptions& options,
                     std::vector<CellResult>& cells,
                     std::vector<std::string>& failures) {
  const std::size_t ns = scheduler_names.size();
  auto run_rep = [&](std::size_t rep,
                     const std::vector<sched::SchedulerPtr>& schedulers,
                     sim::Schedule& schedule) {
    try {
      const std::uint64_t seed =
          util::derive_seed(options.base_seed, 0x9d1cULL, rep);
      const sim::Workload workload = factory(seed);
      const sim::Problem problem(workload);
      for (std::size_t si = 0; si < ns; ++si) {
        // Recycled per-chunk Schedule + each scheduler's scratch arena: a
        // steady-state repetition allocates only the workload itself.
        schedulers[si]->schedule_into(problem, schedule);
        if (options.check_schedules) {
          const auto violations = schedule.validate(problem);
          if (!violations.empty()) {
            failures[rep] = scheduler_names[si] + ": " + violations.front();
            return;
          }
        }
        CellResult& cell = cells[rep * ns + si];
        cell.slr = slr(problem, schedule);
        cell.speedup = speedup(problem, schedule);
        cell.efficiency = efficiency(problem, schedule);
        cell.makespan = schedule.makespan();
        fill_objectives(problem, schedule, options.deadline_factor, cell);
      }
    } catch (const std::exception& e) {
      failures[rep] = e.what();
    }
  };
  auto run_chunk = [&](std::size_t begin, std::size_t end) {
    const obs::TimingSpan chunk_span("experiment.chunk");
    std::vector<sched::SchedulerPtr> schedulers;
    schedulers.reserve(ns);
    try {
      for (const std::string& name : scheduler_names) {
        schedulers.push_back(registry.make(name));
        schedulers.back()->set_trace_sink(options.trace_sink);
      }
    } catch (const std::exception& e) {
      // Pool tasks must not throw; surface the construction failure the same
      // way a failed repetition is surfaced.
      for (std::size_t rep = begin; rep < end; ++rep) failures[rep] = e.what();
      return;
    }
    // Seed shape is irrelevant: schedule_into resets to the problem's shape,
    // keeping capacities so repetitions recycle the buffers.
    sim::Schedule schedule(0, 1);
    for (std::size_t rep = begin; rep < end; ++rep) {
      run_rep(rep, schedulers, schedule);
    }
  };
  auto run_batched = [&] {
    // Validation happens in the callback (not via the engine's own
    // check_schedules) so the failure messages match the serial path
    // byte-for-byte. The callback runs on the engine workers: every write
    // lands in a cell owned by this (repetition, scheduler) pair, and
    // failures[rep] is only written by the single worker processing `rep`.
    auto on_result = [&](const svc::BatchResult& r) {
      if (!r.ok) {
        if (failures[r.id].empty()) failures[r.id] = std::string(r.error);
        return;
      }
      if (options.check_schedules) {
        const auto violations = r.schedule->validate(*r.problem);
        if (!violations.empty()) {
          if (failures[r.id].empty()) {
            failures[r.id] =
                scheduler_names[r.scheduler_index] + ": " + violations.front();
          }
          return;
        }
      }
      CellResult& cell = cells[r.id * ns + r.scheduler_index];
      cell.slr = slr(*r.problem, *r.schedule);
      cell.speedup = speedup(*r.problem, *r.schedule);
      cell.efficiency = efficiency(*r.problem, *r.schedule);
      cell.makespan = r.schedule->makespan();
      fill_objectives(*r.problem, *r.schedule, options.deadline_factor, cell);
    };
    svc::BatchEngineOptions engine_options;
    engine_options.pool = options.pool;
    engine_options.queue_capacity = std::max<std::size_t>(
        std::size_t{64}, options.pool->size() * 4);
    engine_options.trace_sink = options.trace_sink;
    svc::BatchEngine engine(registry, on_result, engine_options);
    svc::BatchRequest request;
    request.generator = &factory;
    request.schedulers = scheduler_names;
    for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
      request.id = rep;
      request.seed = util::derive_seed(options.base_seed, 0x9d1cULL, rep);
      engine.submit(request);  // blocking: the bounded queue is backpressure
    }
    engine.shutdown(svc::BatchEngine::Drain::kDrain);
  };
  {
    const obs::TimingSpan span("experiment.run_repetitions");
    if (options.pool != nullptr) {
      run_batched();
    } else {
      run_chunk(0, options.repetitions);
    }
  }
  {
    static obs::Counter& reps_counter =
        obs::MetricRegistry::global().counter("experiment.repetitions");
    static obs::Counter& schedules_counter =
        obs::MetricRegistry::global().counter("experiment.schedules");
    reps_counter.add(options.repetitions);
    schedules_counter.add(options.repetitions * ns);
  }
  for (const std::string& f : failures) {
    if (!f.empty()) throw Error("experiment repetition failed: " + f);
  }
}

void check_inputs(const std::vector<std::string>& scheduler_names,
                  const CompareOptions& options) {
  if (scheduler_names.empty()) {
    throw InvalidArgument("experiment needs >= 1 scheduler");
  }
  if (options.repetitions == 0) {
    throw InvalidArgument("experiment needs >= 1 repetition");
  }
}

}  // namespace

std::vector<SchedulerSummary> compare_schedulers(
    const WorkloadFactory& factory,
    const std::vector<std::string>& scheduler_names,
    const sched::Registry& registry, const CompareOptions& options) {
  check_inputs(scheduler_names, options);
  const std::size_t ns = scheduler_names.size();
  const std::size_t reps = options.repetitions;

  // Each worker instantiates its own scheduler objects (they are not
  // required to be thread-safe) but shares nothing mutable across reps.
  std::vector<CellResult> cells(ns * reps);
  std::vector<std::string> failures(reps);
  run_repetitions(factory, scheduler_names, registry, options, cells,
                  failures);

  std::vector<SchedulerSummary> out(ns);
  for (std::size_t si = 0; si < ns; ++si) {
    out[si].scheduler = scheduler_names[si];
  }
  std::vector<std::size_t> misses(ns, 0);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t si = 0; si < ns; ++si) {
      best = std::min(best, cells[rep * ns + si].makespan);
    }
    for (std::size_t si = 0; si < ns; ++si) {
      const CellResult& cell = cells[rep * ns + si];
      SchedulerSummary& s = out[si];
      s.slr.add(cell.slr);
      s.speedup.add(cell.speedup);
      s.efficiency.add(cell.efficiency);
      s.makespan.add(cell.makespan);
      s.energy.add(cell.energy);
      if (cell.makespan <= best * (1.0 + 1e-12)) ++s.wins;
      if (cell.missed_deadline) ++misses[si];
    }
  }
  for (std::size_t si = 0; si < ns; ++si) {
    out[si].deadline_miss_rate =
        static_cast<double>(misses[si]) / static_cast<double>(reps);
  }
  return out;
}

bool pareto_dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool no_worse = a.makespan <= b.makespan && a.energy <= b.energy &&
                        a.miss_rate <= b.miss_rate;
  const bool better = a.makespan < b.makespan || a.energy < b.energy ||
                      a.miss_rate < b.miss_rate;
  return no_worse && better;
}

std::vector<ParetoPoint> pareto_frontier(std::span<const ParetoPoint> points) {
  std::vector<ParetoPoint> out;
  for (const ParetoPoint& p : points) {
    const bool dominated =
        std::any_of(points.begin(), points.end(),
                    [&](const ParetoPoint& q) { return pareto_dominates(q, p); });
    if (!dominated) out.push_back(p);
  }
  std::sort(out.begin(), out.end(), [](const ParetoPoint& a,
                                       const ParetoPoint& b) {
    if (a.makespan != b.makespan) return a.makespan < b.makespan;
    if (a.energy != b.energy) return a.energy < b.energy;
    if (a.miss_rate != b.miss_rate) return a.miss_rate < b.miss_rate;
    return a.scheduler < b.scheduler;
  });
  return out;
}

std::vector<ParetoPoint> pareto_points(
    const std::vector<SchedulerSummary>& summaries) {
  std::vector<ParetoPoint> out;
  out.reserve(summaries.size());
  for (const SchedulerSummary& s : summaries) {
    out.push_back({s.scheduler, s.makespan.mean(), s.energy.mean(),
                   s.deadline_miss_rate});
  }
  return out;
}

std::vector<ParetoPoint> pareto_frontier(
    const std::vector<SchedulerSummary>& summaries) {
  return pareto_frontier(std::span<const ParetoPoint>(pareto_points(summaries)));
}

std::vector<std::vector<double>> win_matrix(
    const WorkloadFactory& factory,
    const std::vector<std::string>& scheduler_names,
    const sched::Registry& registry, const CompareOptions& options) {
  check_inputs(scheduler_names, options);
  const std::size_t ns = scheduler_names.size();
  const std::size_t reps = options.repetitions;
  std::vector<CellResult> cells(ns * reps);
  std::vector<std::string> failures(reps);
  run_repetitions(factory, scheduler_names, registry, options, cells,
                  failures);

  std::vector<std::vector<double>> matrix(ns, std::vector<double>(ns, 0.0));
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < ns; ++i) {
      for (std::size_t j = 0; j < ns; ++j) {
        if (i == j) continue;
        if (cells[rep * ns + i].makespan <
            cells[rep * ns + j].makespan - 1e-12) {
          matrix[i][j] += 1.0;
        }
      }
    }
  }
  for (auto& row : matrix) {
    for (double& v : row) v /= static_cast<double>(reps);
  }
  return matrix;
}

}  // namespace hdlts::metrics
