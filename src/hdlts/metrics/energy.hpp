// Energy accounting (extension; the paper's §II-B observes that task
// duplication "may reduce the overall makespan, but with the cost of ...
// higher energy consumption" — this module makes that trade-off
// measurable).
//
// Model: every executed block (primary or duplicate) draws its processor's
// busy power for its duration; for the rest of the schedule horizon
// (through the makespan) each alive processor draws its idle power. The
// power numbers are read from the cached sim::CompiledProblem energy rows —
// the same table the energy-aware scheduler consults — so bench and metric
// code never duplicates the W * (busy - idle) arithmetic. Equivalently:
//   total() == sum(dyn_energy over placements)
//              + makespan * total_static_power()
// (pre-occupied busy intervals are background load and are excluded).
#pragma once

#include "hdlts/sim/problem.hpp"
#include "hdlts/sim/schedule.hpp"

namespace hdlts::metrics {

struct EnergyBreakdown {
  double busy = 0.0;       ///< energy spent executing blocks
  double idle = 0.0;       ///< energy spent idling until the makespan
  double duplicate = 0.0;  ///< portion of `busy` burned by duplicates
  double total() const { return busy + idle; }
};

/// Energy of a (partial or complete) schedule on the problem's platform.
EnergyBreakdown energy(const sim::Problem& problem,
                       const sim::Schedule& schedule);

/// Same accounting straight off the compiled view (hot paths, bench grids).
EnergyBreakdown energy(const sim::CompiledProblem& problem,
                       const sim::Schedule& schedule);

}  // namespace hdlts::metrics
