#include "hdlts/metrics/energy.hpp"

namespace hdlts::metrics {

EnergyBreakdown energy(const sim::CompiledProblem& problem,
                       const sim::Schedule& schedule) {
  EnergyBreakdown out;
  const double horizon = schedule.makespan();
  for (const platform::ProcId p : problem.procs()) {
    double busy_time = 0.0;
    for (const sim::Placement& pl : schedule.timeline(p)) {
      if (pl.task == graph::kInvalidTask) continue;  // pre-occupied interval
      const double duration = pl.finish - pl.start;
      const double joules = duration * problem.busy_power(p);
      out.busy += joules;
      if (pl.duplicate) out.duplicate += joules;
      busy_time += duration;
    }
    out.idle += (horizon - busy_time) * problem.static_power(p);
  }
  return out;
}

EnergyBreakdown energy(const sim::Problem& problem,
                       const sim::Schedule& schedule) {
  return energy(problem.compiled(), schedule);
}

}  // namespace hdlts::metrics
