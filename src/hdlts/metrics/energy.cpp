#include "hdlts/metrics/energy.hpp"

namespace hdlts::metrics {

EnergyBreakdown energy(const sim::Problem& problem,
                       const sim::Schedule& schedule) {
  const auto& platform = problem.platform();
  EnergyBreakdown out;
  const double horizon = schedule.makespan();
  for (const platform::ProcId p : problem.procs()) {
    double busy_time = 0.0;
    for (const sim::Placement& pl : schedule.timeline(p)) {
      const double duration = pl.finish - pl.start;
      const double joules = duration * platform.busy_power(p);
      out.busy += joules;
      if (pl.duplicate) out.duplicate += joules;
      busy_time += duration;
    }
    out.idle += (horizon - busy_time) * platform.idle_power(p);
  }
  return out;
}

}  // namespace hdlts::metrics
