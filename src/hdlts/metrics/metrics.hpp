// The paper's comparison metrics (§V-A): makespan (Eq. 9), scheduling length
// ratio (Eq. 10), speedup (Eq. 11), efficiency (Eq. 12).
#pragma once

#include "hdlts/sim/problem.hpp"
#include "hdlts/sim/schedule.hpp"

namespace hdlts::metrics {

/// Sum of min-processor execution costs along the minimum-computation-cost
/// critical path CP_MIN — the SLR denominator (lower bound on makespan).
/// The path maximizes the sum of per-task minimum execution times
/// (communication excluded, as in the HEFT paper's SLR definition).
double min_cost_critical_path(const sim::Problem& problem);

/// makespan / min_cost_critical_path (Eq. 10); >= 1 for valid schedules on
/// graphs whose critical path has positive cost.
double slr(const sim::Problem& problem, const sim::Schedule& schedule);

/// Minimum over processors of the whole graph's sequential execution time
/// (the Eq. 11 numerator).
double best_sequential_time(const sim::Problem& problem);

/// best_sequential_time / makespan (Eq. 11).
double speedup(const sim::Problem& problem, const sim::Schedule& schedule);

/// speedup / number of (alive) processors (Eq. 12).
double efficiency(const sim::Problem& problem, const sim::Schedule& schedule);

/// A (slightly) sharper lower bound on any duplication-free makespan:
/// max(min-cost critical path, total minimum work / alive processors).
/// Duplication can beat the work term only by wasting capacity, never the
/// critical-path term, so only the CP component binds schedules with
/// duplicates.
double makespan_lower_bound(const sim::Problem& problem);

}  // namespace hdlts::metrics
