// Experiment harness: runs a set of schedulers over many seeded repetitions
// of a workload family and aggregates the paper's metrics. Repetitions are
// independent and each derives its RNG from (base seed, repetition), so the
// results are identical whether they run on 1 thread or many.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "hdlts/sched/registry.hpp"
#include "hdlts/sim/problem.hpp"
#include "hdlts/util/stats.hpp"
#include "hdlts/util/thread_pool.hpp"

namespace hdlts::obs {
class DecisionTrace;
}

namespace hdlts::metrics {

/// Produces a fresh workload for a repetition seed.
using WorkloadFactory = std::function<sim::Workload(std::uint64_t seed)>;

/// Aggregated metrics of one scheduler over all repetitions.
struct SchedulerSummary {
  std::string scheduler;
  util::RunningStats slr;
  util::RunningStats speedup;
  util::RunningStats efficiency;
  util::RunningStats makespan;
  /// Repetitions in which this scheduler produced the (possibly shared)
  /// best makespan among the compared set.
  std::size_t wins = 0;
};

struct CompareOptions {
  std::size_t repetitions = 30;
  std::uint64_t base_seed = 42;
  /// Validate every schedule against the problem (on in tests; costs time).
  bool check_schedules = false;
  /// Optional pool; when null the repetitions run sequentially.
  util::ThreadPool* pool = nullptr;
  /// Optional decision-trace sink attached to every scheduler instance. The
  /// sink must be thread-safe when `pool` is set (obs::RecordingTrace is);
  /// events from different repetitions interleave in arrival order.
  obs::DecisionTrace* trace_sink = nullptr;
};

/// Runs every named scheduler from `registry` on `repetitions` workloads
/// drawn from `factory`. Throws if a scheduler produces an invalid schedule
/// while check_schedules is set. Summaries come back in the order of
/// `scheduler_names`.
std::vector<SchedulerSummary> compare_schedulers(
    const WorkloadFactory& factory,
    const std::vector<std::string>& scheduler_names,
    const sched::Registry& registry, const CompareOptions& options = {});

/// Pairwise comparison: entry [i][j] is the fraction of repetitions where
/// scheduler i's makespan was strictly lower than scheduler j's (diagonal
/// 0). Rows/columns follow `scheduler_names`. Same repetition seeds as
/// compare_schedulers, so the two views are consistent.
std::vector<std::vector<double>> win_matrix(
    const WorkloadFactory& factory,
    const std::vector<std::string>& scheduler_names,
    const sched::Registry& registry, const CompareOptions& options = {});

}  // namespace hdlts::metrics
