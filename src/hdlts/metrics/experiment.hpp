// Experiment harness: runs a set of schedulers over many seeded repetitions
// of a workload family and aggregates the paper's metrics. Repetitions are
// independent and each derives its RNG from (base seed, repetition), so the
// results are identical whether they run on 1 thread or many.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "hdlts/sched/registry.hpp"
#include "hdlts/sim/problem.hpp"
#include "hdlts/util/stats.hpp"
#include "hdlts/util/thread_pool.hpp"

namespace hdlts::obs {
class DecisionTrace;
}

namespace hdlts::metrics {

/// Produces a fresh workload for a repetition seed.
using WorkloadFactory = std::function<sim::Workload(std::uint64_t seed)>;

/// Aggregated metrics of one scheduler over all repetitions.
struct SchedulerSummary {
  std::string scheduler;
  util::RunningStats slr;
  util::RunningStats speedup;
  util::RunningStats efficiency;
  util::RunningStats makespan;
  /// Total schedule energy (metrics::energy(...).total()) per repetition.
  util::RunningStats energy;
  /// Repetitions in which this scheduler produced the (possibly shared)
  /// best makespan among the compared set.
  std::size_t wins = 0;
  /// Fraction of repetitions whose makespan overran the repetition's
  /// deadline (CompareOptions::deadline_factor; 0 when deadlines are off).
  double deadline_miss_rate = 0.0;
};

struct CompareOptions {
  std::size_t repetitions = 30;
  std::uint64_t base_seed = 42;
  /// Validate every schedule against the problem (on in tests; costs time).
  bool check_schedules = false;
  /// Optional pool; when null the repetitions run sequentially.
  util::ThreadPool* pool = nullptr;
  /// Optional decision-trace sink attached to every scheduler instance. The
  /// sink must be thread-safe when `pool` is set (obs::RecordingTrace is);
  /// events from different repetitions interleave in arrival order.
  obs::DecisionTrace* trace_sink = nullptr;
  /// Multi-objective mode: when > 0 every repetition gets the
  /// scheduler-independent deadline deadline_factor * makespan_lower_bound
  /// (the same bound for every scheduler on that repetition's problem), and
  /// each summary's deadline_miss_rate reports how often the scheduler
  /// overran it. 0 (the default) disables deadline accounting.
  double deadline_factor = 0.0;
};

/// Runs every named scheduler from `registry` on `repetitions` workloads
/// drawn from `factory`. Throws if a scheduler produces an invalid schedule
/// while check_schedules is set. Summaries come back in the order of
/// `scheduler_names`.
std::vector<SchedulerSummary> compare_schedulers(
    const WorkloadFactory& factory,
    const std::vector<std::string>& scheduler_names,
    const sched::Registry& registry, const CompareOptions& options = {});

/// Pairwise comparison: entry [i][j] is the fraction of repetitions where
/// scheduler i's makespan was strictly lower than scheduler j's (diagonal
/// 0). Rows/columns follow `scheduler_names`. Same repetition seeds as
/// compare_schedulers, so the two views are consistent.
std::vector<std::vector<double>> win_matrix(
    const WorkloadFactory& factory,
    const std::vector<std::string>& scheduler_names,
    const sched::Registry& registry, const CompareOptions& options = {});

/// One scheduler's position in the makespan x energy x deadline-miss-rate
/// objective space (all three minimized).
struct ParetoPoint {
  std::string scheduler;
  double makespan = 0.0;
  double energy = 0.0;
  double miss_rate = 0.0;
};

/// True when `a` is at least as good as `b` on every objective and strictly
/// better on at least one (the standard Pareto dominance order).
bool pareto_dominates(const ParetoPoint& a, const ParetoPoint& b);

/// The non-dominated subset of `points`. Deterministic regardless of input
/// order: membership is input-order independent (each point is tested
/// against every other), and the result is sorted by makespan, then energy,
/// then miss rate, then scheduler name. Objective-identical points are
/// mutually non-dominated and all kept.
std::vector<ParetoPoint> pareto_frontier(std::span<const ParetoPoint> points);

/// Summaries -> objective points (mean makespan, mean energy, miss rate),
/// in summary order.
std::vector<ParetoPoint> pareto_points(
    const std::vector<SchedulerSummary>& summaries);

/// Convenience: pareto_frontier(pareto_points(summaries)).
std::vector<ParetoPoint> pareto_frontier(
    const std::vector<SchedulerSummary>& summaries);

}  // namespace hdlts::metrics
