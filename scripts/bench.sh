#!/usr/bin/env bash
# Performance-trajectory harness: builds the benchmarks in a Release
# (-O2 -DNDEBUG) tree, runs bench/micro_scale, bench/micro_layout and
# bench/micro_schedulers, and diffs the fresh BENCH_sched_scale.json /
# BENCH_layout.json against the committed baselines in bench/. Exits
# non-zero when the schedule of measured cells changed shape, when the
# headline hdlts incremental speedup fell below the 5x acceptance bar, when
# the compiled path made any steady-state heap allocation or lost its edge
# over the legacy layout, or when any scheduler cell regressed by more than
# the allowed factor (wall-clock comparisons across machines are noisy, so
# the factor is deliberately loose; override with
# HDLTS_BENCH_REGRESSION_FACTOR). Additionally gates the telemetry contract:
# the hdlts null-sink path (telemetry compiled in, no sink attached) must
# stay within HDLTS_NULL_SINK_FACTOR (default 1.02) of the committed
# baseline, and the recording-sink overhead is reported alongside.
#
# bench/micro_dynamic (compiled vs legacy online/stream rescheduling) writes
# BENCH_dynamic.json: the compiled dynamic paths must stay allocation-free in
# steady state and the online path must hold >= HDLTS_MIN_DYNAMIC_SPEEDUP
# (default 3.0) per dynamic decision over the legacy per-phase-rebuild
# implementation — this bar binds in smoke mode too, because the advantage is
# algorithmic rather than size-dependent.
#
# Also runs bench/micro_batch (svc::BatchEngine throughput scaling) and diffs
# BENCH_batch.json: per-thread-count req/s cells against the regression
# factor, plus the >=HDLTS_BATCH_SPEEDUP_MIN (default 3.0) scaling bar —
# binding whenever the host has >= 4 cores, measured at the widest thread
# row that fits within hardware_concurrency vs the 1-thread row (a 1-core
# container can prove determinism but not scaling; the gate says so and
# skips there).
#
# Usage: scripts/bench.sh [--update|--smoke]
#   --update  rewrite the committed baselines with the fresh measurements
#   --smoke   CI mode: identical cell shapes (the baseline diff needs them)
#             but fewer repetitions and loose wall-clock gates — shared
#             runners are slow and noisy, so smoke proves the benches run and
#             the structural contracts hold (zero allocs, determinism, cells
#             present), not the exact numbers. Ratio-based gates (incremental
#             and layout speedups) are loosened, not dropped.
#
# Gate overrides (env):
#   HDLTS_BENCH_REGRESSION_FACTOR   per-cell wall-clock slack   (default 3.0)
#   HDLTS_NULL_SINK_FACTOR          null-sink telemetry slack   (default 1.02)
#   HDLTS_MIN_INCREMENTAL_SPEEDUP   hdlts-vs-reference bar      (default 5.0)
#   HDLTS_MIN_LAYOUT_SPEEDUP        compiled-vs-legacy bar      (default 1.05)
#   HDLTS_BATCH_SPEEDUP_MIN         batch hi-vs-1-thread bar    (default 3.0)
#   HDLTS_MIN_DYNAMIC_SPEEDUP       online compiled-vs-legacy
#                                   ns/decision bar             (default 3.0)
#
# Tier-1 (`ctest`) is untouched: this script uses its own build directory.
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-}"
BUILD_DIR=build-bench
BASELINE=bench/BENCH_sched_scale.json
FRESH="${BUILD_DIR}/BENCH_sched_scale.json"
LAYOUT_BASELINE=bench/BENCH_layout.json
LAYOUT_FRESH="${BUILD_DIR}/BENCH_layout.json"
BATCH_BASELINE=bench/BENCH_batch.json
BATCH_FRESH="${BUILD_DIR}/BENCH_batch.json"
DYNAMIC_BASELINE=bench/BENCH_dynamic.json
DYNAMIC_FRESH="${BUILD_DIR}/BENCH_dynamic.json"

if [[ "${MODE}" == "--smoke" ]]; then
  # Reduced effort, same cell shapes. Each default below still honours an
  # explicit env override from the caller.
  export HDLTS_LAYOUT_REPS="${HDLTS_LAYOUT_REPS:-3}"
  # Enough requests per pass that the 4-thread row on a 4-core runner can
  # clear the >=3x scaling bar (the bar binds in smoke mode too), and a
  # second rep so best-of smooths a single noisy pass.
  export HDLTS_BATCH_REQUESTS="${HDLTS_BATCH_REQUESTS:-24}"
  export HDLTS_BATCH_REPS="${HDLTS_BATCH_REPS:-2}"
  export HDLTS_BENCH_MIN_TIME="${HDLTS_BENCH_MIN_TIME:-0.01}"
  # Smoke-sized dynamic cells: same two rows (the diff needs the shapes),
  # smaller graphs. The >=3x per-decision gate still binds — the compiled
  # advantage is algorithmic (no per-phase rebuild), not size-dependent.
  export HDLTS_DYNAMIC_TASKS="${HDLTS_DYNAMIC_TASKS:-400}"
  export HDLTS_DYNAMIC_STREAM_TASKS="${HDLTS_DYNAMIC_STREAM_TASKS:-120}"
  export HDLTS_DYNAMIC_REPS="${HDLTS_DYNAMIC_REPS:-3}"
  FACTOR="${HDLTS_BENCH_REGRESSION_FACTOR:-25.0}"
  NULL_SINK_FACTOR="${HDLTS_NULL_SINK_FACTOR:-5.0}"
  MIN_INCREMENTAL="${HDLTS_MIN_INCREMENTAL_SPEEDUP:-3.0}"
else
  FACTOR="${HDLTS_BENCH_REGRESSION_FACTOR:-3.0}"
  # Telemetry gate: the null-sink (default) hdlts path must stay within this
  # factor of the committed baseline — the "telemetry compiled in but off
  # adds <2%" contract. Skipped when the baseline predates the field.
  NULL_SINK_FACTOR="${HDLTS_NULL_SINK_FACTOR:-1.02}"
  MIN_INCREMENTAL="${HDLTS_MIN_INCREMENTAL_SPEEDUP:-5.0}"
fi
MIN_LAYOUT="${HDLTS_MIN_LAYOUT_SPEEDUP:-1.05}"
BATCH_SPEEDUP_MIN="${HDLTS_BATCH_SPEEDUP_MIN:-3.0}"
MIN_DYNAMIC="${HDLTS_MIN_DYNAMIC_SPEEDUP:-3.0}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" >/dev/null
cmake --build "${BUILD_DIR}" -j \
  --target micro_scale micro_layout micro_schedulers micro_batch \
  micro_dynamic >/dev/null

echo "== running bench/micro_scale (this builds the perf trajectory) =="
(cd "${BUILD_DIR}" && HDLTS_SCALE_JSON=BENCH_sched_scale.json \
  ./bench/micro_scale)

echo
echo "== running bench/micro_layout (compiled vs legacy + allocation counts) =="
# Wall-clock noise on shared machines easily exceeds the 2% telemetry bound,
# so the telemetry cells take the best (min) over three runs with a deep
# best-of per run; the scheduler cell diff uses the first run as before.
export HDLTS_LAYOUT_REPS="${HDLTS_LAYOUT_REPS:-25}"
(cd "${BUILD_DIR}" && HDLTS_LAYOUT_JSON=BENCH_layout.json \
  ./bench/micro_layout)
if command -v python3 >/dev/null 2>&1; then
  for extra in 2 3; do
    (cd "${BUILD_DIR}" && HDLTS_LAYOUT_JSON="BENCH_layout_run${extra}.json" \
      ./bench/micro_layout >/dev/null)
  done
  python3 - "${LAYOUT_FRESH}" "${BUILD_DIR}/BENCH_layout_run2.json" \
    "${BUILD_DIR}/BENCH_layout_run3.json" <<'EOF'
import json, sys
paths = sys.argv[1:]
docs = [json.load(open(p)) for p in paths]
doc = docs[0]
for key in ("hdlts_null_sink_ms", "hdlts_recording_ms"):
    doc[key] = min(d[key] for d in docs)
doc["hdlts_recording_overhead"] = (
    doc["hdlts_recording_ms"] / doc["hdlts_null_sink_ms"])
json.dump(doc, open(paths[0], "w"), indent=2)
EOF
fi

echo
echo "== running bench/micro_batch (svc::BatchEngine throughput scaling) =="
(cd "${BUILD_DIR}" && HDLTS_BATCH_JSON=BENCH_batch.json ./bench/micro_batch)

echo
echo "== running bench/micro_dynamic (compiled vs legacy online/stream) =="
(cd "${BUILD_DIR}" && HDLTS_DYNAMIC_JSON=BENCH_dynamic.json \
  ./bench/micro_dynamic)

echo
echo "== running bench/micro_schedulers (google-benchmark sweep) =="
(cd "${BUILD_DIR}" && ./bench/micro_schedulers \
  --benchmark_min_time="${HDLTS_BENCH_MIN_TIME:-0.05}")

if [[ "${MODE}" == "--smoke" ]]; then
  echo
  echo "== running examples/stress_tool (monitored soak smoke) =="
  cmake --build "${BUILD_DIR}" -j --target stress_tool >/dev/null
  # Short mixed static/online soak with fault injection and every result
  # check-validated; the zero-violation SLO gates make this a correctness
  # smoke, not a wall-clock one (no throughput floor on shared runners).
  "${BUILD_DIR}/examples/stress_tool" --config="duration=${HDLTS_SOAK_SECONDS:-8},threads=2,problems=4,monitor_period=500,online_fraction=0.4,timeline=${BUILD_DIR}/soak_smoke.jsonl,prom=${BUILD_DIR}/soak_smoke.prom"
  # Validate the exposition output: promtool when the runner has it,
  # otherwise the strict line-grammar checker in scripts/.
  if command -v promtool >/dev/null 2>&1; then
    promtool check metrics < "${BUILD_DIR}/soak_smoke.prom"
  else
    python3 scripts/check_prom_format.py "${BUILD_DIR}/soak_smoke.prom"
  fi
fi

if [[ "${MODE}" == "--update" ]]; then
  cp "${FRESH}" "${BASELINE}"
  cp "${LAYOUT_FRESH}" "${LAYOUT_BASELINE}"
  cp "${BATCH_FRESH}" "${BATCH_BASELINE}"
  cp "${DYNAMIC_FRESH}" "${DYNAMIC_BASELINE}"
  echo "baselines updated: ${BASELINE}, ${LAYOUT_BASELINE}," \
       "${BATCH_BASELINE}, ${DYNAMIC_BASELINE}"
  exit 0
fi

if [[ ! -f "${BASELINE}" || ! -f "${LAYOUT_BASELINE}" \
      || ! -f "${BATCH_BASELINE}" || ! -f "${DYNAMIC_BASELINE}" ]]; then
  echo "no committed baselines in bench/; run scripts/bench.sh --update"
  exit 1
fi

if ! command -v python3 >/dev/null 2>&1; then
  echo "python3 unavailable; skipping the baseline diff (bench still ran)"
  exit 0
fi

# Every gate below runs even when an earlier one fails — `set -e` would
# otherwise abort at the first failing python block and the later gates
# (layout, batch, dynamic) would never run or report. Failures accumulate
# into GATE_FAILURES and the script exits non-zero if ANY gate failed.
GATE_FAILURES=0

python3 - "$BASELINE" "$FRESH" "$FACTOR" "$MIN_INCREMENTAL" <<'EOF' \
  || GATE_FAILURES=$((GATE_FAILURES + 1))
import json, sys

baseline_path, fresh_path, factor = sys.argv[1], sys.argv[2], float(sys.argv[3])
min_incremental = float(sys.argv[4])
baseline = json.load(open(baseline_path))
fresh = json.load(open(fresh_path))

def cells(doc):
    return {(r["tasks"], r["procs"], r["scheduler"]): r for r in doc["rows"]}

base_cells, fresh_cells = cells(baseline), cells(fresh)
failed = False

missing = sorted(set(base_cells) - set(fresh_cells))
added = sorted(set(fresh_cells) - set(base_cells))
if missing:
    print(f"FAIL: cells missing vs baseline: {missing}")
    failed = True
if added:
    print(f"note: new cells not in baseline: {added}")

speedup = fresh.get("hdlts_speedup_5k_32")
if speedup is None:
    print("FAIL: fresh run has no hdlts_speedup_5k_32 (reference not run?)")
    failed = True
elif speedup < min_incremental:
    print(f"FAIL: hdlts incremental speedup {speedup:.1f}x < "
          f"{min_incremental:.1f}x acceptance bar")
    failed = True
else:
    print(f"ok: hdlts incremental speedup {speedup:.1f}x (baseline "
          f"{baseline.get('hdlts_speedup_5k_32', float('nan')):.1f}x)")

worst = (None, 0.0)
for key in sorted(set(base_cells) & set(fresh_cells)):
    ratio = fresh_cells[key]["ms"] / base_cells[key]["ms"]
    if ratio > worst[1]:
        worst = (key, ratio)
    if ratio > factor:
        print(f"FAIL: {key} regressed {ratio:.2f}x vs baseline "
              f"({base_cells[key]['ms']:.2f} ms -> {fresh_cells[key]['ms']:.2f} ms)")
        failed = True
if worst[0] is not None:
    print(f"worst cell ratio vs baseline: {worst[0]} at {worst[1]:.2f}x "
          f"(allowed {factor:.1f}x)")

sys.exit(1 if failed else 0)
EOF

python3 - "$LAYOUT_BASELINE" "$LAYOUT_FRESH" "$FACTOR" "$NULL_SINK_FACTOR" \
  "$MIN_LAYOUT" <<'EOF' \
  || GATE_FAILURES=$((GATE_FAILURES + 1))
import json, sys

baseline_path, fresh_path, factor = sys.argv[1], sys.argv[2], float(sys.argv[3])
null_sink_factor = float(sys.argv[4])
min_layout = float(sys.argv[5])
baseline = json.load(open(baseline_path))
fresh = json.load(open(fresh_path))

def cells(doc):
    return {r["scheduler"]: r for r in doc["rows"]}

base_cells, fresh_cells = cells(baseline), cells(fresh)
failed = False

missing = sorted(set(base_cells) - set(fresh_cells))
if missing:
    print(f"FAIL: layout cells missing vs baseline: {missing}")
    failed = True

for name, row in sorted(fresh_cells.items()):
    if row["compiled_steady_allocs"] != 0:
        print(f"FAIL: {name} compiled path allocates in steady state "
              f"({row['compiled_steady_allocs']} allocs/call; contract is 0)")
        failed = True
    if name in base_cells:
        ratio = row["compiled_ms"] / base_cells[name]["compiled_ms"]
        if ratio > factor:
            print(f"FAIL: {name} compiled_ms regressed {ratio:.2f}x vs "
                  f"baseline ({base_cells[name]['compiled_ms']:.2f} ms -> "
                  f"{row['compiled_ms']:.2f} ms)")
            failed = True

speedup = fresh.get("hdlts_layout_speedup", 0.0)
if speedup < min_layout:
    print(f"FAIL: hdlts layout speedup {speedup:.2f}x — compiled path no "
          f"longer beats the legacy layout")
    failed = True
else:
    print(f"ok: hdlts layout speedup {speedup:.2f}x (baseline "
          f"{baseline.get('hdlts_layout_speedup', float('nan')):.2f}x), "
          f"compiled steady-state allocs all 0")

# Telemetry rows: null-sink (telemetry compiled in, no sink attached) vs a
# full RecordingTrace decision stream.
null_ms = fresh.get("hdlts_null_sink_ms")
rec_ms = fresh.get("hdlts_recording_ms")
rec_overhead = fresh.get("hdlts_recording_overhead")
if null_ms is None:
    print("FAIL: fresh run has no hdlts_null_sink_ms (telemetry bench not run?)")
    failed = True
else:
    print(f"telemetry: null-sink {null_ms:.3f} ms, recording "
          f"{rec_ms:.3f} ms ({rec_overhead:.2f}x)")
    base_null = baseline.get("hdlts_null_sink_ms")
    if base_null is None:
        print("note: baseline predates hdlts_null_sink_ms; null-sink gate "
              "skipped (run scripts/bench.sh --update)")
    else:
        ratio = null_ms / base_null
        if ratio > null_sink_factor:
            print(f"FAIL: hdlts null-sink path regressed {ratio:.3f}x vs "
                  f"baseline ({base_null:.3f} ms -> {null_ms:.3f} ms, "
                  f"allowed {null_sink_factor:.2f}x) — telemetry is leaking "
                  f"into the disabled path")
            failed = True
        else:
            print(f"ok: hdlts null-sink path at {ratio:.3f}x of baseline "
                  f"(allowed {null_sink_factor:.2f}x)")

sys.exit(1 if failed else 0)
EOF

python3 - "$BATCH_BASELINE" "$BATCH_FRESH" "$FACTOR" "$BATCH_SPEEDUP_MIN" <<'EOF' \
  || GATE_FAILURES=$((GATE_FAILURES + 1))
import json, sys

baseline_path, fresh_path, factor = sys.argv[1], sys.argv[2], float(sys.argv[3])
speedup_min = float(sys.argv[4])
baseline = json.load(open(baseline_path))
fresh = json.load(open(fresh_path))

def cells(doc):
    return {r["threads"]: r for r in doc["rows"]}

base_cells, fresh_cells = cells(baseline), cells(fresh)
failed = False

missing = sorted(set(base_cells) - set(fresh_cells))
if missing:
    print(f"FAIL: batch thread-count cells missing vs baseline: {missing}")
    failed = True

# Throughput regression per thread-count cell (higher rps is better, so the
# gate is on base/fresh). Requests-per-pass may differ between baseline and
# a smoke run; rps normalises that away.
for threads in sorted(set(base_cells) & set(fresh_cells)):
    ratio = base_cells[threads]["rps"] / fresh_cells[threads]["rps"]
    if ratio > factor:
        print(f"FAIL: batch throughput at {threads} threads regressed "
              f"{ratio:.2f}x vs baseline ({base_cells[threads]['rps']:.0f} "
              f"-> {fresh_cells[threads]['rps']:.0f} req/s)")
        failed = True

# The scaling bar needs real cores: a 1-core container runs the 8-thread row
# (the determinism check inside micro_batch is just as strong there) but its
# speedup number is oversubscription noise. The gate binds whenever the host
# has >= 4 cores, using the WIDEST thread row that still fits in the cores —
# a 4-core runner is judged on its 4-thread row even though the sweep also
# ran (and oversubscribed) the 8-thread row.
hardware = fresh.get("hardware_concurrency", 0)
lo = fresh.get("threads_lo", 0)
fitting = [t for t in fresh_cells if lo < t <= hardware]
if hardware >= 4 and lo in fresh_cells and fitting:
    widest = max(fitting)
    speedup = fresh_cells[widest]["rps"] / fresh_cells[lo]["rps"]
    if speedup < speedup_min:
        print(f"FAIL: batch throughput speedup {speedup:.2f}x at {widest} vs "
              f"{lo} threads < {speedup_min:.1f}x bar (host has {hardware} "
              f"cores)")
        failed = True
    else:
        print(f"ok: batch throughput speedup {speedup:.2f}x at {widest} vs "
              f"{lo} threads (bar {speedup_min:.1f}x, host has {hardware} "
              f"cores)")
else:
    speedup = fresh.get("batch_speedup", 0.0)
    print(f"note: host has {hardware} cores (< 4, or no multi-thread row "
          f"fits) — batch scaling bar skipped (full-sweep speedup "
          f"{speedup:.2f}x, not meaningful here)")

sys.exit(1 if failed else 0)
EOF
python3 - "$DYNAMIC_BASELINE" "$DYNAMIC_FRESH" "$FACTOR" "$MIN_DYNAMIC" <<'PYEOF' \
  || GATE_FAILURES=$((GATE_FAILURES + 1))
import json, sys

baseline_path, fresh_path, factor = sys.argv[1], sys.argv[2], float(sys.argv[3])
min_dynamic = float(sys.argv[4])
baseline = json.load(open(baseline_path))
fresh = json.load(open(fresh_path))

def cells(doc):
    return {r["path"]: r for r in doc["rows"]}

base_cells, fresh_cells = cells(baseline), cells(fresh)
failed = False

missing = sorted(set(base_cells) - set(fresh_cells))
if missing:
    print(f"FAIL: dynamic cells missing vs baseline: {missing}")
    failed = True

for name, row in sorted(fresh_cells.items()):
    if row["compiled_steady_allocs"] != 0:
        print(f"FAIL: dynamic {name} compiled path allocates in steady "
              f"state ({row['compiled_steady_allocs']} allocs/call; "
              f"contract is 0)")
        failed = True
    if name in base_cells:
        ratio = row["compiled_ms"] / base_cells[name]["compiled_ms"]
        # Smoke runs use smaller graphs, so only flag wall-clock regressions
        # when the cell shape (tasks) matches the committed baseline.
        if row.get("tasks") == base_cells[name].get("tasks") and ratio > factor:
            print(f"FAIL: dynamic {name} compiled_ms regressed {ratio:.2f}x "
                  f"vs baseline ({base_cells[name]['compiled_ms']:.2f} ms -> "
                  f"{row['compiled_ms']:.2f} ms)")
            failed = True

speedup = fresh.get("online_dynamic_speedup", 0.0)
if speedup < min_dynamic:
    print(f"FAIL: online dynamic speedup {speedup:.2f}x < "
          f"{min_dynamic:.1f}x acceptance bar (ns/decision, compiled vs "
          f"legacy)")
    failed = True
else:
    print(f"ok: online dynamic speedup {speedup:.2f}x (baseline "
          f"{baseline.get('online_dynamic_speedup', float('nan')):.2f}x), "
          f"stream {fresh.get('stream_dynamic_speedup', 0.0):.2f}x, "
          f"compiled steady-state allocs all 0")

sys.exit(1 if failed else 0)
PYEOF

if [[ "${GATE_FAILURES}" -gt 0 ]]; then
  echo "== bench diff FAILED: ${GATE_FAILURES} gate(s) tripped =="
  exit 1
fi
echo "== bench diff ok =="
