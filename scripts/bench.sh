#!/usr/bin/env bash
# Performance-trajectory harness: builds the benchmarks in a Release
# (-O2 -DNDEBUG) tree, runs bench/micro_scale, and diffs the fresh
# BENCH_sched_scale.json against the committed baseline
# (bench/BENCH_sched_scale.json). Exits non-zero when the schedule of
# measured cells changed shape, when the headline hdlts incremental speedup
# fell below the 5x acceptance bar, or when any scheduler cell regressed by
# more than the allowed factor (wall-clock comparisons across machines are
# noisy, so the factor is deliberately loose; override with
# HDLTS_BENCH_REGRESSION_FACTOR).
#
# Usage: scripts/bench.sh [--update]
#   --update  rewrite the committed baseline with the fresh measurements
#
# Tier-1 (`ctest`) is untouched: this script uses its own build directory.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-bench
BASELINE=bench/BENCH_sched_scale.json
FRESH="${BUILD_DIR}/BENCH_sched_scale.json"
FACTOR="${HDLTS_BENCH_REGRESSION_FACTOR:-3.0}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" >/dev/null
cmake --build "${BUILD_DIR}" -j --target micro_scale >/dev/null

echo "== running bench/micro_scale (this builds the perf trajectory) =="
(cd "${BUILD_DIR}" && HDLTS_SCALE_JSON=BENCH_sched_scale.json \
  ./bench/micro_scale)

if [[ "${1:-}" == "--update" ]]; then
  cp "${FRESH}" "${BASELINE}"
  echo "baseline updated: ${BASELINE}"
  exit 0
fi

if [[ ! -f "${BASELINE}" ]]; then
  echo "no committed baseline at ${BASELINE}; run scripts/bench.sh --update"
  exit 1
fi

if ! command -v python3 >/dev/null 2>&1; then
  echo "python3 unavailable; skipping the baseline diff (bench still ran)"
  exit 0
fi

python3 - "$BASELINE" "$FRESH" "$FACTOR" <<'EOF'
import json, sys

baseline_path, fresh_path, factor = sys.argv[1], sys.argv[2], float(sys.argv[3])
baseline = json.load(open(baseline_path))
fresh = json.load(open(fresh_path))

def cells(doc):
    return {(r["tasks"], r["procs"], r["scheduler"]): r for r in doc["rows"]}

base_cells, fresh_cells = cells(baseline), cells(fresh)
failed = False

missing = sorted(set(base_cells) - set(fresh_cells))
added = sorted(set(fresh_cells) - set(base_cells))
if missing:
    print(f"FAIL: cells missing vs baseline: {missing}")
    failed = True
if added:
    print(f"note: new cells not in baseline: {added}")

speedup = fresh.get("hdlts_speedup_5k_32")
if speedup is None:
    print("FAIL: fresh run has no hdlts_speedup_5k_32 (reference not run?)")
    failed = True
elif speedup < 5.0:
    print(f"FAIL: hdlts incremental speedup {speedup:.1f}x < 5x acceptance bar")
    failed = True
else:
    print(f"ok: hdlts incremental speedup {speedup:.1f}x (baseline "
          f"{baseline.get('hdlts_speedup_5k_32', float('nan')):.1f}x)")

worst = (None, 0.0)
for key in sorted(set(base_cells) & set(fresh_cells)):
    ratio = fresh_cells[key]["ms"] / base_cells[key]["ms"]
    if ratio > worst[1]:
        worst = (key, ratio)
    if ratio > factor:
        print(f"FAIL: {key} regressed {ratio:.2f}x vs baseline "
              f"({base_cells[key]['ms']:.2f} ms -> {fresh_cells[key]['ms']:.2f} ms)")
        failed = True
if worst[0] is not None:
    print(f"worst cell ratio vs baseline: {worst[0]} at {worst[1]:.2f}x "
          f"(allowed {factor:.1f}x)")

sys.exit(1 if failed else 0)
EOF
echo "== bench diff ok =="
