#!/usr/bin/env python3
"""Strict line-grammar check for Prometheus text exposition format v0.0.4.

Stand-in for `promtool check metrics` on runners that don't ship promtool
(scripts/bench.sh and CI fall back to this). Validates the subset
obs::prometheus_render() emits, strictly:

  * every line is a HELP comment, a TYPE comment, or a sample
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
  * label names match [a-zA-Z_][a-zA-Z0-9_]*; label values are quoted with
    only \\\\ \\" \\n escapes
  * sample values parse as Go floats, including NaN / +Inf / -Inf literals
  * TYPE precedes the first sample of its metric and appears at most once
  * counters end in _total; histograms expose _bucket/_sum/_count, have an
    le="+Inf" bucket, and bucket counts are cumulative (non-decreasing)
  * no duplicate samples (same name + same label set)

Usage: check_prom_format.py FILE [FILE...]   (exit 0 iff all files pass)
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$")
TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(counter|gauge|histogram|summary|untyped)$"
)
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"        # metric name
    r"(?:\{(.*)\})?"                       # optional label set
    r" ([^ ]+)"                            # value
    r"(?: (-?[0-9]+))?$"                   # optional ms timestamp
)
VALUE_RE = re.compile(
    r"^(?:[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)|NaN|\+Inf|-Inf)$"
)


def parse_labels(raw, err):
    """Split a label body like a=\"b\",c=\"d\" -> sorted tuple; None on error."""
    labels = []
    i, n = 0, len(raw)
    while i < n:
        j = raw.find("=", i)
        if j < 0:
            return err("label missing '='")
        name = raw[i:j]
        if not LABEL_NAME_RE.match(name):
            return err(f"bad label name {name!r}")
        if j + 1 >= n or raw[j + 1] != '"':
            return err(f"label {name!r} value not quoted")
        k = j + 2
        value = []
        while k < n and raw[k] != '"':
            if raw[k] == "\\":
                if k + 1 >= n or raw[k + 1] not in ('\\', '"', 'n'):
                    return err(f"bad escape in label {name!r}")
                k += 1
            value.append(raw[k])
            k += 1
        if k >= n:
            return err(f"unterminated value for label {name!r}")
        labels.append((name, "".join(value)))
        i = k + 1
        if i < n:
            if raw[i] != ",":
                return err("expected ',' between labels")
            i += 1
    return tuple(sorted(labels))


def base_metric(name, types):
    """Histogram samples use NAME_bucket/_sum/_count; map back to NAME."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    if name.endswith("_total") and types.get(name[: -len("_total")]) == "counter":
        return name[: -len("_total")]
    return name


def check_file(path):
    errors = []
    types = {}           # metric -> declared type
    helped = set()
    sampled = set()      # metrics that already emitted a sample
    seen_samples = set()  # (name, labels) duplicates
    buckets = {}         # metric -> list of (le, count) in order of appearance

    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # trailing newline is fine
    else:
        errors.append((len(lines), "file does not end with a newline"))

    for lineno, line in enumerate(lines, 1):
        def err(msg):
            errors.append((lineno, msg))
            return None

        if line == "":
            continue
        if line.startswith("#"):
            m = HELP_RE.match(line)
            if m:
                if m.group(1) in helped:
                    err(f"duplicate HELP for {m.group(1)}")
                helped.add(m.group(1))
                continue
            m = TYPE_RE.match(line)
            if m:
                name, kind = m.group(1), m.group(2)
                if name in types:
                    err(f"duplicate TYPE for {name}")
                elif name in sampled:
                    err(f"TYPE for {name} after its first sample")
                types[name] = kind
                continue
            err(f"malformed comment line: {line!r}")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err(f"malformed sample line: {line!r}")
            continue
        name, raw_labels, value = m.group(1), m.group(2), m.group(3)
        if not VALUE_RE.match(value):
            err(f"bad sample value {value!r}")
        labels = parse_labels(raw_labels, err) if raw_labels is not None else ()
        if labels is None:
            continue
        if (name, labels) in seen_samples:
            err(f"duplicate sample {name}{dict(labels)}")
        seen_samples.add((name, labels))

        base = base_metric(name, types)
        sampled.add(base)
        kind = types.get(base)
        if kind is None:
            err(f"sample {name!r} has no preceding TYPE")
            continue
        if kind == "counter":
            if not name.endswith("_total"):
                err(f"counter sample {name!r} must end in _total")
            if value.startswith("-"):
                err(f"counter {name!r} has negative value {value}")
        if kind == "histogram" and name.endswith("_bucket"):
            le = dict(labels).get("le")
            if le is None:
                err(f"histogram bucket {name!r} missing le label")
            else:
                buckets.setdefault(base, []).append((le, value))

    for metric, rows in sorted(buckets.items()):
        if rows[-1][0] != "+Inf":
            errors.append((0, f"histogram {metric} last bucket le={rows[-1][0]!r},"
                              " expected +Inf"))
        counts = []
        for le, value in rows:
            try:
                counts.append(float(value))
            except ValueError:
                pass  # already reported as a bad value
        if counts != sorted(counts):
            errors.append((0, f"histogram {metric} bucket counts not cumulative:"
                              f" {counts}"))

    for lineno, msg in errors:
        print(f"{path}:{lineno}: {msg}", file=sys.stderr)
    return not errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    ok = True
    for path in argv[1:]:
        if check_file(path):
            print(f"{path}: ok")
        else:
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
