#!/usr/bin/env bash
# Reproduces every table/figure of the paper plus the extension ablations.
#
#   scripts/reproduce.sh [results_dir]
#
# Environment: HDLTS_REPS (default 100), HDLTS_FULL=1 to include the
# V=5000/10000 rows of Fig. 3 and the full grid range of table2_grid,
# HDLTS_JOBS to cap build/test parallelism (default: all cores).
set -euo pipefail

here="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$here/results}"
mkdir -p "$out"

jobs="${HDLTS_JOBS:-$(nproc 2>/dev/null || echo 2)}"

# Ninja is faster when present but not guaranteed; fall back to the default
# generator (Make) rather than failing on a bare container.
generator=()
if command -v ninja >/dev/null 2>&1; then
  generator=(-G Ninja)
fi

cmake -B "$here/build" "${generator[@]}" -S "$here" \
  -DCMAKE_BUILD_TYPE=Release
cmake --build "$here/build" -j "$jobs"

echo "== tests ==" | tee "$out/tests.txt"
ctest --test-dir "$here/build" -j "$jobs" --output-on-failure 2>&1 \
  | tail -3 | tee -a "$out/tests.txt"

export HDLTS_CSV_DIR="$out"
export HDLTS_SVG_DIR="$out"
for b in "$here"/build/bench/*; do
  name="$(basename "$b")"
  echo "== $name =="
  "$b" | tee "$out/$name.txt"
done

echo
echo "results written to $out (tables: *.txt, plot data: *.csv, figures: *.svg)"
