#!/usr/bin/env bash
# Reproduces every table/figure of the paper plus the extension ablations.
#
#   scripts/reproduce.sh [results_dir]
#
# Environment: HDLTS_REPS (default 100), HDLTS_FULL=1 to include the
# V=5000/10000 rows of Fig. 3 and the full grid range of table2_grid.
set -euo pipefail

here="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$here/results}"
mkdir -p "$out"

cmake -B "$here/build" -G Ninja -S "$here"
cmake --build "$here/build"

echo "== tests ==" | tee "$out/tests.txt"
ctest --test-dir "$here/build" 2>&1 | tail -3 | tee -a "$out/tests.txt"

export HDLTS_CSV_DIR="$out"
export HDLTS_SVG_DIR="$out"
for b in "$here"/build/bench/*; do
  name="$(basename "$b")"
  echo "== $name =="
  "$b" | tee "$out/$name.txt"
done

echo
echo "results written to $out (tables: *.txt, plot data: *.csv, figures: *.svg)"
