// Domain example: an FFT workflow (paper §V-C1) swept over machine counts —
// how far does parallel efficiency carry as the HCE grows?
//
//   $ ./fft_workflow --points=16 --ccr=2 --reps=20
#include <iostream>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/experiment.hpp"
#include "hdlts/util/cli.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/fft.hpp"

int main(int argc, char** argv) {
  using namespace hdlts;
  const util::Cli cli(argc, argv);
  const auto points = static_cast<std::size_t>(cli.get_int("points", 16));
  const double ccr = cli.get_double("ccr", 2.0);
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 20));

  std::cout << "FFT workflow, m = " << points << " ("
            << workload::fft_task_count(points) << " tasks), CCR " << ccr
            << ":\n\n";

  util::Table table({"CPUs", "hdlts SLR", "hdlts speedup", "hdlts efficiency",
                     "heft efficiency"});
  for (const std::size_t cpus : {2u, 4u, 6u, 8u, 10u}) {
    workload::FftParams params;
    params.points = points;
    params.costs.num_procs = cpus;
    params.costs.ccr = ccr;
    const metrics::WorkloadFactory factory = [&params](std::uint64_t seed) {
      return workload::fft_workload(params, seed);
    };
    metrics::CompareOptions options;
    options.repetitions = reps;
    const auto rows = metrics::compare_schedulers(
        factory, {"hdlts", "heft"}, core::default_registry(), options);
    table.add_row({std::to_string(cpus), util::fmt(rows[0].slr.mean(), 3),
                   util::fmt(rows[0].speedup.mean(), 3),
                   util::fmt(rows[0].efficiency.mean(), 3),
                   util::fmt(rows[1].efficiency.mean(), 3)});
  }
  table.write_markdown(std::cout);
  std::cout << "\nEfficiency falls as CPUs grow (Eq. 12): the butterfly's "
               "parallelism saturates.\n";
  return 0;
}
