// Quickstart: build a workflow by hand, schedule it with HDLTS, and inspect
// the result. This is the 60-second tour of the public API.
//
//   $ ./quickstart
#include <iostream>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/metrics.hpp"
#include "hdlts/sim/engine.hpp"
#include "hdlts/sim/gantt.hpp"

int main() {
  using namespace hdlts;

  // 1. Describe the application workflow: tasks + data-dependency edges.
  //    Edge data volumes become communication times (at bandwidth 1).
  graph::TaskGraph g;
  const auto load = g.add_task("load");
  const auto parse_a = g.add_task("parse_a");
  const auto parse_b = g.add_task("parse_b");
  const auto merge = g.add_task("merge");
  g.add_edge(load, parse_a, /*data=*/8.0);
  g.add_edge(load, parse_b, /*data=*/8.0);
  g.add_edge(parse_a, merge, /*data=*/4.0);
  g.add_edge(parse_b, merge, /*data=*/4.0);

  // 2. Describe the heterogeneous platform: the W matrix gives each task's
  //    execution time on each CPU (paper Definition 1).
  sim::CostTable costs(g.num_tasks(), /*num_procs=*/2);
  const double w[4][2] = {{6, 3}, {10, 14}, {9, 12}, {5, 4}};
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    for (platform::ProcId p = 0; p < 2; ++p) costs.set(v, p, w[v][p]);
  }
  sim::Workload workload{std::move(g), std::move(costs),
                         platform::Platform(2, /*bandwidth=*/1.0)};

  // 3. Schedule with HDLTS and look at what happened.
  const sim::Problem problem(workload);
  const sim::Schedule schedule = core::Hdlts().schedule(problem);

  std::cout << "HDLTS schedule (entry duplicates marked '*'):\n"
            << sim::to_gantt(schedule) << "\n";
  for (graph::TaskId v = 0; v < problem.num_tasks(); ++v) {
    const sim::Placement& pl = schedule.placement(v);
    std::cout << "  " << workload.graph.name(v) << " -> "
              << workload.platform.proc_name(pl.proc) << " [" << pl.start
              << ", " << pl.finish << ")\n";
  }

  // 4. Metrics (paper Eqs. 10-12) and an independent discrete-event replay.
  std::cout << "\nmakespan   = " << schedule.makespan()
            << "\nSLR        = " << metrics::slr(problem, schedule)
            << "\nspeedup    = " << metrics::speedup(problem, schedule)
            << "\nefficiency = " << metrics::efficiency(problem, schedule)
            << "\n";
  const sim::EngineResult replayed = sim::replay(problem, schedule);
  std::cout << "replay agrees with analytic schedule: "
            << (replayed.matches_schedule ? "yes" : "NO") << "\n";
  return 0;
}
