// Domain example: scheduling an astronomical Montage pipeline (the paper's
// §V-C2 workload) and comparing every algorithm the paper evaluates.
//
//   $ ./montage_pipeline --nodes=50 --cpus=5 --ccr=3 --reps=20
//   $ ./montage_pipeline --nodes=100 --dot=montage.dot   # also dump DOT
#include <fstream>
#include <iostream>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/graph/dot.hpp"
#include "hdlts/metrics/experiment.hpp"
#include "hdlts/util/cli.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/montage.hpp"

int main(int argc, char** argv) {
  using namespace hdlts;
  const util::Cli cli(argc, argv);
  workload::MontageParams params;
  params.num_nodes =
      static_cast<std::size_t>(cli.get_int("nodes", 50));
  params.costs.num_procs =
      static_cast<std::size_t>(cli.get_int("cpus", 5));
  params.costs.ccr = cli.get_double("ccr", 3.0);
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 20));

  if (cli.has("dot")) {
    util::Rng rng(1);
    graph::DotOptions dot_options;
    dot_options.name = "montage";
    std::ofstream out(cli.get("dot", "montage.dot"));
    graph::write_dot(out, workload::montage_structure(params, rng),
                     dot_options);
    std::cout << "wrote " << cli.get("dot", "montage.dot") << "\n";
  }

  const metrics::WorkloadFactory factory = [&params](std::uint64_t seed) {
    return workload::montage_workload(params, seed);
  };

  metrics::CompareOptions options;
  options.repetitions = reps;
  options.check_schedules = true;
  const auto rows = metrics::compare_schedulers(
      factory, {"hdlts", "heft", "pets", "cpop", "peft", "sdbats"},
      core::default_registry(), options);

  std::cout << "Montage, " << params.num_nodes << " nodes, "
            << params.costs.num_procs << " CPUs, CCR " << params.costs.ccr
            << ", " << reps << " repetitions:\n\n";
  util::Table table({"scheduler", "SLR", "ci95", "speedup", "efficiency",
                     "wins"});
  for (const auto& r : rows) {
    table.add_row({r.scheduler, util::fmt(r.slr.mean(), 3),
                   util::fmt(r.slr.ci95_halfwidth(), 3),
                   util::fmt(r.speedup.mean(), 3),
                   util::fmt(r.efficiency.mean(), 3),
                   std::to_string(r.wins)});
  }
  table.write_markdown(std::cout);
  return 0;
}
