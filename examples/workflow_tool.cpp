// A small command-line tool around the library: generate workload files,
// schedule them with any registered algorithm, and print/dump the result.
//
//   $ ./workflow_tool generate --kind=montage --nodes=50 --out=m.wl
//   $ ./workflow_tool schedule m.wl --scheduler=hdlts --gantt
//   $ ./workflow_tool schedule m.wl --scheduler=heft --csv=placements.csv
//   $ ./workflow_tool batch workloads.txt --schedulers=hdlts,heft --threads=8
//   $ ./workflow_tool list
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <tuple>

#include "hdlts/check/validate.hpp"
#include "hdlts/core/hdlts.hpp"
#include "hdlts/graph/analysis.hpp"
#include "hdlts/io/workload_io.hpp"
#include "hdlts/metrics/experiment.hpp"
#include "hdlts/metrics/metrics.hpp"
#include "hdlts/net/client.hpp"
#include "hdlts/net/server.hpp"
#include "hdlts/obs/export.hpp"
#include "hdlts/obs/monitor.hpp"
#include "hdlts/obs/prometheus.hpp"
#include "hdlts/report/gantt_svg.hpp"
#include "hdlts/sim/gantt.hpp"
#include "hdlts/svc/batch_engine.hpp"
#include "hdlts/util/cli.hpp"
#include "hdlts/util/config.hpp"
#include "hdlts/util/json.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/gauss.hpp"
#include "hdlts/workload/md.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace {

using namespace hdlts;

int usage() {
  std::cout <<
      "usage:\n"
      "  workflow_tool list\n"
      "  workflow_tool generate --kind=random|fft|montage|md|gauss\n"
      "      [--tasks=N --points=M --nodes=N --matrix=M]\n"
      "      [--cpus=P --ccr=X --beta=X --wdag=X --seed=S] --out=FILE\n"
      "  workflow_tool schedule FILE [--scheduler=hdlts] [--gantt]\n"
      "      [--csv=FILE] [--svg=FILE] [--trace-out=FILE]\n"
      "      [--counters-out=FILE] [--prom-out=FILE]\n"
      "  workflow_tool profile FILE\n"
      "  workflow_tool compare FILE [--schedulers=a,b,c]\n"
      "      [--pareto] [--reps=N] [--seed=S] [--deadline-factor=X]\n"
      "      [--trace-out=FILE] [--counters-out=FILE] [--prom-out=FILE]\n"
      "  workflow_tool batch WORKLOADS.txt [--schedulers=a,b,c]\n"
      "      [--threads=N] [--queue-cap=N] [--out=FILE.jsonl] [--check]\n"
      "      [--trace-out=FILE] [--counters-out=FILE] [--prom-out=FILE]\n"
      "  workflow_tool online FILE [--fail=proc@frac ...] [--validate]\n"
      "      [--legacy]\n"
      "  workflow_tool stream FILE [FILE ...] [--arrivals=t1,t2,...]\n"
      "      [--policy=pv|fifo] [--validate] [--legacy]\n"
      "  workflow_tool serve [--config=key=value,...] [--port-file=FILE]\n"
      "      [--timeline=FILE]   (see docs/SERVICE.md for config keys)\n"
      "  workflow_tool submit [--port=N|--port-file=FILE] [--tenant=T]\n"
      "      [--kind=static|online|stream] [--id=N] [--seed=S] [--count=N]\n"
      "      [--workload=FILE | --generator=random|fft|montage|md|gauss\n"
      "       --tasks=N --cpus=P --ccr=X ...] [--schedulers=a,b,c]\n"
      "      [--fail=proc@time ...] [--arrivals=t1,t2,...] [--policy=pv]\n"
      "      [--raw-line=JSON] [--ping] [--stats] [--drain]\n"
      "      [--expect=ok,QueueFull,...] [--metrics-out=FILE]\n"
      "      [--timeout-ms=N]\n";
  return 2;
}

/// SIGTERM/SIGINT target for the serve verb (async-signal-safe drain).
std::atomic<net::Server*> g_serve_server{nullptr};

extern "C" void serve_signal_handler(int) {
  net::Server* server = g_serve_server.load(std::memory_order_acquire);
  if (server != nullptr) server->notify_drain_async();
}

/// Parses a --fail spec "proc@frac"; frac scales the clean makespan.
core::ProcFailure parse_fail_spec(const std::string& spec,
                                  double clean_makespan) {
  const auto at = spec.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= spec.size()) {
    throw InvalidArgument("--fail expects proc@frac, got '" + spec + "'");
  }
  try {
    const auto proc =
        static_cast<platform::ProcId>(std::stoul(spec.substr(0, at)));
    const double frac = std::stod(spec.substr(at + 1));
    return {proc, clean_makespan * frac};
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("--fail expects proc@frac, got '" + spec + "'");
  }
}

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> names;
  std::istringstream ls(csv);
  std::string token;
  while (std::getline(ls, token, ',')) {
    if (!token.empty()) names.push_back(token);
  }
  return names;
}

/// Dumps the process-wide metric registry as JSON ({"counters":..,...}).
void write_counters_file(const std::string& path) {
  std::ofstream out(path);
  obs::write_counters_json(out, obs::MetricRegistry::global());
  out << "\n";
  std::cout << "wrote " << path << "\n";
}

/// Dumps the registry in the Prometheus text exposition format.
void write_prom_file(const std::string& path) {
  std::ofstream out(path);
  obs::prometheus_render(obs::MetricRegistry::global(), out);
  std::cout << "wrote " << path << "\n";
}

sim::Workload generate(const util::Cli& cli) {
  workload::CostParams costs;
  costs.num_procs = static_cast<std::size_t>(cli.get_int("cpus", 4));
  costs.ccr = cli.get_double("ccr", 1.0);
  costs.beta = cli.get_double("beta", 0.8);
  costs.wdag = cli.get_double("wdag", 50.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string kind = cli.get("kind", "random");
  if (kind == "random") {
    workload::RandomDagParams p;
    p.num_tasks = static_cast<std::size_t>(cli.get_int("tasks", 100));
    p.alpha = cli.get_double("alpha", 1.0);
    p.density = static_cast<std::size_t>(cli.get_int("density", 3));
    p.costs = costs;
    return workload::random_workload(p, seed);
  }
  if (kind == "fft") {
    workload::FftParams p;
    p.points = static_cast<std::size_t>(cli.get_int("points", 16));
    p.costs = costs;
    return workload::fft_workload(p, seed);
  }
  if (kind == "montage") {
    workload::MontageParams p;
    p.num_nodes = static_cast<std::size_t>(cli.get_int("nodes", 50));
    p.costs = costs;
    return workload::montage_workload(p, seed);
  }
  if (kind == "md") {
    workload::MdParams p;
    p.costs = costs;
    return workload::md_workload(p, seed);
  }
  if (kind == "gauss") {
    workload::GaussParams p;
    p.matrix_size = static_cast<std::size_t>(cli.get_int("matrix", 8));
    p.costs = costs;
    return workload::gauss_workload(p, seed);
  }
  throw InvalidArgument("unknown workload kind '" + kind + "'");
}

/// Renders the submit verb's generator object from the CLI flags (all
/// parameters are always emitted; the server applies the same defaults).
std::string generator_json(const util::Cli& cli) {
  std::string out = "{\"kind\":\"";
  out += util::json_escape(cli.get("generator", "random"));
  out += "\",\"tasks\":" + std::to_string(cli.get_int("tasks", 100));
  out += ",\"alpha\":" + util::json_number(cli.get_double("alpha", 1.0));
  out += ",\"density\":" + std::to_string(cli.get_int("density", 3));
  out += ",\"points\":" + std::to_string(cli.get_int("points", 16));
  out += ",\"nodes\":" + std::to_string(cli.get_int("nodes", 50));
  out += ",\"matrix\":" + std::to_string(cli.get_int("matrix", 8));
  out += ",\"cpus\":" + std::to_string(cli.get_int("cpus", 4));
  out += ",\"ccr\":" + util::json_number(cli.get_double("ccr", 1.0));
  out += ",\"beta\":" + util::json_number(cli.get_double("beta", 0.8));
  out += ",\"wdag\":" + util::json_number(cli.get_double("wdag", 50.0));
  out += "}";
  return out;
}

/// Builds one submit frame from the CLI flags (without trailing newline).
std::string submit_line(const util::Cli& cli, std::uint64_t id) {
  const std::string kind = cli.get("kind", "static");
  std::string line = "{\"op\":\"submit\",\"id\":" + std::to_string(id);
  line += ",\"tenant\":\"" + util::json_escape(cli.get("tenant", "default")) +
          "\"";
  line += ",\"kind\":\"" + util::json_escape(kind) + "\"";
  line += ",\"seed\":" + std::to_string(cli.get_int("seed", 1));

  std::string payload;  // the workload/generator member, reused per arrival
  if (cli.has("workload")) {
    const std::string path = cli.get("workload", "");
    std::ifstream in(path);
    if (!in) throw InvalidArgument("cannot open workload '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    payload = "\"workload\":\"" + util::json_escape(text.str()) + "\"";
  } else {
    payload = "\"generator\":" + generator_json(cli);
  }

  if (kind == "stream") {
    const std::vector<std::string> times = split_names(
        cli.get("arrivals", "0,20"));
    line += ",\"policy\":\"" + util::json_escape(cli.get("policy", "pv")) +
            "\",\"arrivals\":[";
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (i > 0) line += ',';
      line += "{" + payload + ",\"arrival\":" +
              util::json_number(std::stod(times[i])) +
              ",\"seed\":" +
              std::to_string(cli.get_int("seed", 1) +
                             static_cast<std::int64_t>(i)) +
              "}";
    }
    line += "]";
  } else {
    line += "," + payload;
    if (kind == "online") {
      std::string failures;
      for (const std::string& spec : cli.get_all("fail")) {
        const auto at = spec.find('@');
        if (at == std::string::npos) {
          throw InvalidArgument("--fail expects proc@time, got '" + spec +
                                "'");
        }
        if (!failures.empty()) failures += ',';
        failures += "{\"proc\":" + spec.substr(0, at) +
                    ",\"time\":" + spec.substr(at + 1) + "}";
      }
      if (!failures.empty()) line += ",\"failures\":[" + failures + "]";
    } else {
      line += ",\"schedulers\":[";
      const auto names = split_names(cli.get("schedulers", "hdlts"));
      for (std::size_t i = 0; i < names.size(); ++i) {
        if (i > 0) line += ',';
        line += "\"" + util::json_escape(names[i]) + "\"";
      }
      line += "]";
    }
  }
  line += "}";
  return line;
}

/// Maps a response frame to its outcome class for --expect: "ok" for
/// accepted responses, the taxonomy name ("QueueFull", ...) for errors.
std::string classify_response(const std::string& line) {
  if (line.rfind("{\"ok\":true", 0) == 0) return "ok";
  const auto pos = line.find("\"error\":\"");
  if (pos == std::string::npos) return "unparseable";
  const auto start = pos + 9;
  const auto end = line.find('"', start);
  if (end == std::string::npos) return "unparseable";
  return line.substr(start, end - start);
}

std::uint16_t resolve_port(const util::Cli& cli) {
  if (cli.has("port")) {
    return static_cast<std::uint16_t>(cli.get_int("port", 0));
  }
  const std::string path = cli.get("port-file", "");
  if (path.empty()) {
    throw InvalidArgument("submit needs --port or --port-file");
  }
  std::ifstream in(path);
  int port = 0;
  in >> port;
  if (!in || port <= 0 || port > 65535) {
    throw InvalidArgument("cannot read a port from '" + path + "'");
  }
  return static_cast<std::uint16_t>(port);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  try {
    if (cli.positional().empty()) return usage();
    const std::string& command = cli.positional()[0];

    if (command == "list") {
      std::cout << "registered schedulers:\n";
      for (const auto& name : core::default_registry().names()) {
        std::cout << "  " << name << "\n";
      }
      return 0;
    }

    if (command == "generate") {
      const std::string out = cli.get("out", "workflow.wl");
      const sim::Workload w = generate(cli);
      io::save_workload(out, w);
      std::cout << "wrote " << out << " (" << w.graph.num_tasks()
                << " tasks, " << w.graph.num_edges() << " edges, "
                << w.platform.num_procs() << " CPUs)\n";
      return 0;
    }

    if (command == "profile") {
      if (cli.positional().size() < 2) return usage();
      const sim::Workload w = io::load_workload(cli.positional()[1]);
      graph::write_profile(std::cout, graph::profile(w.graph));
      std::cout << "processors       " << w.platform.num_procs() << "\n"
                << "mean exec (W)    ";
      double mean = 0.0;
      for (graph::TaskId v = 0; v < w.graph.num_tasks(); ++v) {
        mean += w.costs.mean(v);
      }
      std::cout << mean / static_cast<double>(w.graph.num_tasks()) << "\n";
      return 0;
    }

    if (command == "compare") {
      if (cli.positional().size() < 2) return usage();
      const sim::Workload w = io::load_workload(cli.positional()[1]);
      const sim::Problem problem(w);
      const auto registry = core::default_registry();
      const std::vector<std::string> names = split_names(
          cli.get("schedulers", "hdlts,heft,pets,cpop,peft,sdbats,dheft"));
      if (cli.has("pareto")) {
        // Multi-objective mode: aggregate makespan / energy / deadline-miss
        // rate per scheduler over --reps repetitions of this workload and
        // report the Pareto frontier as JSON on stdout. The frontier order
        // is deterministic (metrics::pareto_frontier sorts it).
        metrics::CompareOptions copts;
        copts.repetitions = static_cast<std::size_t>(
            std::max<std::int64_t>(1, cli.get_int("reps", 1)));
        copts.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
        copts.deadline_factor = cli.get_double("deadline-factor", 0.0);
        const metrics::WorkloadFactory factory =
            [&w](std::uint64_t) { return w; };
        const std::vector<metrics::SchedulerSummary> summaries =
            metrics::compare_schedulers(factory, names, registry, copts);
        const std::vector<metrics::ParetoPoint> points =
            metrics::pareto_points(summaries);
        const std::vector<metrics::ParetoPoint> frontier =
            metrics::pareto_frontier(summaries);
        auto on_frontier = [&frontier](const std::string& name) {
          return std::any_of(
              frontier.begin(), frontier.end(),
              [&](const metrics::ParetoPoint& f) { return f.scheduler == name; });
        };
        std::cout << "{\"objectives\": [\"makespan\", \"energy\", "
                     "\"deadline_miss_rate\"],\n \"deadline_factor\": "
                  << util::json_number(copts.deadline_factor)
                  << ",\n \"schedulers\": [";
        for (std::size_t i = 0; i < points.size(); ++i) {
          const metrics::ParetoPoint& p = points[i];
          std::cout << (i == 0 ? "" : ",") << "\n  {\"scheduler\": \""
                    << util::json_escape(p.scheduler) << "\", \"makespan\": "
                    << util::json_number(p.makespan) << ", \"energy\": "
                    << util::json_number(p.energy)
                    << ", \"deadline_miss_rate\": "
                    << util::json_number(p.miss_rate) << ", \"on_frontier\": "
                    << (on_frontier(p.scheduler) ? "true" : "false") << "}";
        }
        std::cout << "\n ],\n \"frontier\": [";
        for (std::size_t i = 0; i < frontier.size(); ++i) {
          std::cout << (i == 0 ? "" : ", ") << "\""
                    << util::json_escape(frontier[i].scheduler) << "\"";
        }
        std::cout << "]}\n";
        return 0;
      }
      obs::RecordingTrace recording;
      const bool tracing = cli.has("trace-out");
      if (tracing) obs::SpanLog::global().enable();
      util::Table table({"scheduler", "makespan", "SLR", "efficiency"});
      for (const auto& name : names) {
        const auto scheduler = registry.make(name);
        if (tracing) scheduler->set_trace_sink(&recording);
        const sim::Schedule s = scheduler->schedule(problem);
        table.add_row({name, util::fmt(s.makespan(), 2),
                       util::fmt(metrics::slr(problem, s), 3),
                       util::fmt(metrics::efficiency(problem, s), 3)});
      }
      table.write_markdown(std::cout);
      if (tracing) {
        const std::string path = cli.get("trace-out", "trace.json");
        std::ofstream out(path);
        obs::ChromeTraceOptions trace_options;
        trace_options.graph = &w.graph;
        obs::write_chrome_trace(out, nullptr, &recording,
                                &obs::SpanLog::global(), trace_options);
        std::cout << "wrote " << path << "\n";
      }
      if (cli.has("counters-out")) {
        write_counters_file(cli.get("counters-out", "counters.json"));
      }
      if (cli.has("prom-out")) {
        write_prom_file(cli.get("prom-out", "counters.prom"));
      }
      return 0;
    }

    if (command == "batch") {
      // Concurrent batch mode: a file naming one workload per line goes in,
      // one JSON object per (workload, scheduler) comes out (JSONL, sorted
      // by request id then scheduler), scheduled by svc::BatchEngine across
      // --threads workers with a --queue-cap-bounded submission queue.
      if (cli.positional().size() < 2) return usage();
      std::vector<std::string> paths;
      {
        std::ifstream list(cli.positional()[1]);
        if (!list) {
          throw InvalidArgument("cannot open workload list '" +
                                cli.positional()[1] + "'");
        }
        std::string line;
        while (std::getline(list, line)) {
          const auto start = line.find_first_not_of(" \t\r");
          if (start == std::string::npos || line[start] == '#') continue;
          const auto stop = line.find_last_not_of(" \t\r");
          paths.push_back(line.substr(start, stop - start + 1));
        }
      }
      if (paths.empty()) {
        throw InvalidArgument("workload list '" + cli.positional()[1] +
                              "' names no workload files");
      }
      std::vector<sim::Workload> workloads;
      workloads.reserve(paths.size());
      for (const auto& path : paths) {
        workloads.push_back(io::load_workload(path));
      }
      std::vector<sim::Problem> problems;
      problems.reserve(workloads.size());
      for (const auto& w : workloads) problems.emplace_back(w);

      const auto registry = core::default_registry();
      const std::vector<std::string> names =
          split_names(cli.get("schedulers", "hdlts,heft,cpop"));

      obs::RecordingTrace recording;
      const bool tracing = cli.has("trace-out");
      if (tracing) obs::SpanLog::global().enable();

      struct Row {
        std::uint64_t id = 0;
        std::size_t scheduler_index = 0;
        std::string scheduler;
        bool ok = false;
        std::string error;
        double makespan = 0.0, slr = 0.0, speedup = 0.0, efficiency = 0.0;
      };
      std::vector<Row> rows;
      std::mutex rows_mu;
      auto on_result = [&](const svc::BatchResult& r) {
        Row row;
        row.id = r.id;
        row.scheduler_index = r.scheduler_index;
        row.scheduler = std::string(r.scheduler);
        row.ok = r.ok;
        row.error = std::string(r.error);
        if (r.ok) {
          row.makespan = r.makespan;
          row.slr = metrics::slr(*r.problem, *r.schedule);
          row.speedup = metrics::speedup(*r.problem, *r.schedule);
          row.efficiency = metrics::efficiency(*r.problem, *r.schedule);
        }
        std::lock_guard lock(rows_mu);
        rows.push_back(std::move(row));
      };

      svc::BatchEngineOptions engine_options;
      engine_options.threads =
          static_cast<std::size_t>(cli.get_int("threads", 0));
      engine_options.queue_capacity =
          static_cast<std::size_t>(cli.get_int("queue-cap", 256));
      engine_options.check_schedules = cli.get_bool("check", false);
      if (tracing) engine_options.trace_sink = &recording;

      const auto t0 = std::chrono::steady_clock::now();
      svc::BatchEngine engine(registry, on_result, engine_options);
      svc::BatchRequest request;
      request.schedulers = names;
      for (std::size_t i = 0; i < problems.size(); ++i) {
        request.id = i;
        request.problem = &problems[i];
        engine.submit(request);  // bounded queue: blocks, never drops
      }
      engine.shutdown(svc::BatchEngine::Drain::kDrain);
      const auto t1 = std::chrono::steady_clock::now();
      const double wall_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();

      std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        return std::tie(a.id, a.scheduler_index) <
               std::tie(b.id, b.scheduler_index);
      });
      const std::string out_path = cli.get("out", "-");
      std::ofstream out_file;
      if (out_path != "-") {
        out_file.open(out_path);
        if (!out_file) {
          throw InvalidArgument("cannot write '" + out_path + "'");
        }
      }
      std::ostream& out = out_path == "-" ? std::cout : out_file;
      for (const Row& row : rows) {
        out << "{\"id\": " << row.id << ", \"workload\": \""
            << util::json_escape(paths[row.id]) << "\", \"scheduler\": \""
            << util::json_escape(row.scheduler) << "\", \"ok\": "
            << (row.ok ? "true" : "false");
        if (row.ok) {
          out << ", \"makespan\": " << util::json_number(row.makespan)
              << ", \"slr\": " << util::json_number(row.slr)
              << ", \"speedup\": " << util::json_number(row.speedup)
              << ", \"efficiency\": " << util::json_number(row.efficiency);
        } else {
          out << ", \"error\": \"" << util::json_escape(row.error) << "\"";
        }
        out << "}\n";
      }

      const auto stats = engine.stats();
      std::cerr << "batch: " << stats.completed << "/" << stats.submitted
                << " requests (" << rows.size() << " results) on "
                << engine.threads() << " threads in " << util::fmt(wall_ms, 1)
                << " ms ("
                << util::fmt(1000.0 * static_cast<double>(stats.completed) /
                                 wall_ms,
                             1)
                << " req/s), queue high-water " << stats.queue_high_water
                << ", failures " << stats.sched_failures << "\n";
      if (out_path != "-") std::cout << "wrote " << out_path << "\n";
      if (tracing) {
        const std::string path = cli.get("trace-out", "trace.json");
        std::ofstream trace_out(path);
        obs::write_chrome_trace(trace_out, nullptr, &recording,
                                &obs::SpanLog::global(), {});
        std::cout << "wrote " << path << "\n";
      }
      if (cli.has("counters-out")) {
        write_counters_file(cli.get("counters-out", "counters.json"));
      }
      if (cli.has("prom-out")) {
        write_prom_file(cli.get("prom-out", "counters.prom"));
      }
      return stats.sched_failures == 0 ? 0 : 1;
    }

    if (command == "online") {
      // Failure-injected online run of one workload; --validate replays the
      // result through check::OnlineValidator (the dynamic oracle described
      // in docs/TESTING.md).
      if (cli.positional().size() < 2) return usage();
      const sim::Workload w = io::load_workload(cli.positional()[1]);
      const double clean =
          core::Hdlts().schedule(sim::Problem(w)).makespan();
      std::vector<core::ProcFailure> fails;
      for (const std::string& spec : cli.get_all("fail")) {
        fails.push_back(parse_fail_spec(spec, clean));
      }
      // --legacy runs the reference implementation instead of the compiled
      // path (they are bit-identical; the flag exists for differential
      // smokes and triage).
      const core::OnlineResult r =
          cli.get_bool("legacy", false) ? core::run_online_legacy(w, fails)
                                        : core::run_online(w, fails);
      std::cout << "clean makespan  = " << clean
                << "\nonline makespan = " << r.makespan
                << "\ncompleted       = " << (r.completed ? "yes" : "no")
                << "\nlost executions = " << r.lost_executions << "\n";
      if (cli.get_bool("validate", false)) {
        const check::OnlineValidator validator;
        const auto violations = validator.validate(w, fails, r);
        if (!violations.empty()) {
          std::cerr << "INVALID online result: " << violations.front()
                    << "\n";
          return 1;
        }
        std::cout << "validation      = " << r.executions.size()
                  << " executions replayed, all invariants hold\n";
      }
      return r.completed ? 0 : 1;
    }

    if (command == "stream") {
      // Multi-workflow stream run; arrival times come from --arrivals (CSV,
      // padded with the last gap) and default to 20 time units apart.
      if (cli.positional().size() < 2) return usage();
      std::vector<core::StreamArrival> arrivals;
      const std::vector<std::string> times =
          split_names(cli.get("arrivals", ""));
      for (std::size_t i = 1; i < cli.positional().size(); ++i) {
        const std::size_t w = i - 1;
        const double arrival = w < times.size()
                                   ? std::stod(times[w])
                                   : 20.0 * static_cast<double>(w);
        arrivals.push_back(
            {io::load_workload(cli.positional()[i]), arrival});
      }
      core::StreamOptions stream_options;
      const std::string policy = cli.get("policy", "pv");
      if (policy == "fifo") {
        stream_options.policy = core::StreamPolicy::kFifoEft;
      } else if (policy != "pv") {
        throw InvalidArgument("--policy expects pv or fifo, got '" + policy +
                              "'");
      }
      const core::StreamResult r =
          cli.get_bool("legacy", false)
              ? core::run_stream_legacy(arrivals, stream_options)
              : core::run_stream(arrivals, stream_options);
      util::Table table({"workflow", "arrival", "finish", "flow time"});
      for (std::size_t w = 0; w < arrivals.size(); ++w) {
        table.add_row({cli.positional()[w + 1],
                       util::fmt(arrivals[w].arrival, 2),
                       util::fmt(r.finish[w], 2),
                       util::fmt(r.flow_time[w], 2)});
      }
      table.write_markdown(std::cout);
      std::cout << "stream makespan = " << r.makespan << "\n";
      if (cli.get_bool("validate", false)) {
        const check::StreamValidator validator(stream_options);
        const auto violations = validator.validate(arrivals, r);
        if (!violations.empty()) {
          std::cerr << "INVALID stream result: " << violations.front()
                    << "\n";
          return 1;
        }
        std::cout << "validation      = " << r.executions.size()
                  << " executions replayed, all invariants hold\n";
      }
      return 0;
    }

    if (command == "serve") {
      // Scheduling-as-a-service daemon (docs/SERVICE.md): admission control
      // and per-tenant fair queuing in front of a svc::BatchEngine, drained
      // gracefully on SIGTERM/SIGINT or the drain verb. Exit 0 = drained
      // with invariants intact (and SLO gates passing when monitored).
      util::Config config(cli.get("config", ""));
      net::ServerOptions options = net::server_options_from_config(config);
      const bool monitor_on = config.get_bool("monitor", false);
      const auto monitor_period =
          std::chrono::milliseconds(config.get_int("monitor_period_ms", 1000));
      const double min_completed_rate =
          config.get_double("min_completed_rate", 0.0);
      const double max_p99_ms = config.get_double("max_p99_ms", 0.0);
      const double max_rss_growth = config.get_double("max_rss_growth", 0.0);
      if (const auto unused = config.unused_keys(); !unused.empty()) {
        throw InvalidArgument("unknown serve config key '" + unused.front() +
                              "'");
      }

      const auto registry = core::default_registry();
      net::Server server(registry, options);
      if (cli.has("port-file")) {
        std::ofstream port_file(cli.get("port-file", ""));
        port_file << server.port() << "\n";
      }

      obs::MonitorOptions monitor_options;
      monitor_options.period = monitor_period;
      std::ofstream timeline;
      if (cli.has("timeline")) {
        timeline.open(cli.get("timeline", "serve_timeline.jsonl"));
        monitor_options.timeline = &timeline;
      }
      if (min_completed_rate > 0.0) {
        monitor_options.gates.push_back({obs::SloKind::kMinCounterRate,
                                         "svc.serve.completed",
                                         min_completed_rate, "min_req_rate"});
      }
      if (max_p99_ms > 0.0) {
        monitor_options.gates.push_back({obs::SloKind::kMaxHistogramP99,
                                         "svc.serve.latency_ms", max_p99_ms,
                                         "max_p99_ms"});
      }
      if (max_rss_growth > 0.0) {
        monitor_options.gates.push_back({obs::SloKind::kMaxRssGrowth, "",
                                         max_rss_growth, "max_rss_growth"});
      }
      obs::RuntimeMonitor monitor(monitor_options);

      g_serve_server.store(&server, std::memory_order_release);
      std::signal(SIGTERM, serve_signal_handler);
      std::signal(SIGINT, serve_signal_handler);

      if (monitor_on) monitor.start();
      server.start();
      std::cout << "listening on 127.0.0.1:" << server.port() << "\n"
                << std::flush;
      server.wait();
      g_serve_server.store(nullptr, std::memory_order_release);

      const auto stats = server.stats();
      const auto engine = server.engine_stats();
      std::cerr << "serve: drained; connections " << stats.connections
                << ", accepted " << stats.accepted << ", completed "
                << stats.completed << ", rejected " << stats.rejected
                << ", orphaned " << stats.orphaned << ", engine "
                << engine.completed << "/" << engine.submitted << "\n";
      bool ok = true;
      if (stats.accepted != stats.completed) {
        std::cerr << "serve: INVARIANT VIOLATION accepted != completed\n";
        ok = false;
      }
      if (engine.submitted != engine.completed + engine.cancelled) {
        std::cerr << "serve: INVARIANT VIOLATION engine submitted != "
                     "completed + cancelled\n";
        ok = false;
      }
      if (monitor_on) {
        const auto report = monitor.finish();
        for (const auto& gate : report.gates) {
          std::cerr << "serve: slo " << gate.gate.label << " "
                    << obs::verdict_name(gate.verdict) << " (" << gate.detail
                    << ")\n";
        }
        std::cerr << "serve: slo verdict "
                  << obs::verdict_name(report.verdict) << " over "
                  << report.samples << " samples\n";
        if (report.verdict == obs::Verdict::kFail) ok = false;
      }
      return ok ? 0 : 1;
    }

    if (command == "submit") {
      // Blocking client for the serve daemon. Pipelines --count copies of
      // the request, prints each response frame to stdout, and (optionally)
      // checks every outcome against --expect. Exit 3 = unexpected outcome.
      const auto timeout =
          std::chrono::milliseconds(cli.get_int("timeout-ms", 30000));
      const std::uint16_t port = resolve_port(cli);

      std::vector<std::string> lines;
      if (cli.has("raw-line")) {
        lines.push_back(cli.get("raw-line", ""));
      } else if (cli.get_bool("ping", false)) {
        lines.push_back("{\"op\":\"ping\"}");
      } else if (cli.get_bool("stats", false)) {
        lines.push_back("{\"op\":\"stats\"}");
      } else if (cli.get_bool("drain", false)) {
        lines.push_back("{\"op\":\"drain\"}");
      } else if (cli.has("workload") || cli.has("generator")) {
        const auto count =
            static_cast<std::uint64_t>(cli.get_int("count", 1));
        const auto base_id = static_cast<std::uint64_t>(cli.get_int("id", 1));
        for (std::uint64_t i = 0; i < count; ++i) {
          lines.push_back(submit_line(cli, base_id + i));
        }
      } else if (!cli.has("metrics-out")) {
        return usage();
      }

      int exit_code = 0;
      if (!lines.empty()) {
        net::Client client(port, timeout);
        for (const auto& line : lines) client.send_line(line);
        const std::vector<std::string> expect =
            split_names(cli.get("expect", ""));
        for (std::size_t i = 0; i < lines.size(); ++i) {
          const std::string response = client.recv_line();
          std::cout << response << "\n";
          if (!expect.empty()) {
            const std::string outcome = classify_response(response);
            if (std::find(expect.begin(), expect.end(), outcome) ==
                expect.end()) {
              std::cerr << "unexpected outcome '" << outcome << "' (expected "
                        << cli.get("expect", "") << ")\n";
              exit_code = 3;
            }
          }
        }
      }
      if (cli.has("metrics-out")) {
        const std::string path = cli.get("metrics-out", "metrics.prom");
        std::ofstream out(path);
        out << net::Client::scrape_metrics(port, timeout);
        std::cerr << "wrote " << path << "\n";
      }
      return exit_code;
    }

    if (command == "schedule") {
      if (cli.positional().size() < 2) return usage();
      const sim::Workload w = io::load_workload(cli.positional()[1]);
      const sim::Problem problem(w);
      const auto scheduler =
          core::default_registry().make(cli.get("scheduler", "hdlts"));
      obs::RecordingTrace recording;
      const bool tracing = cli.has("trace-out");
      if (tracing) {
        scheduler->set_trace_sink(&recording);
        obs::SpanLog::global().enable();
      }
      const sim::Schedule schedule = scheduler->schedule(problem);
      const auto violations = schedule.validate(problem);
      if (!violations.empty()) {
        std::cerr << "INVALID schedule: " << violations.front() << "\n";
        return 1;
      }
      std::cout << "scheduler  = " << scheduler->name()
                << "\nmakespan   = " << schedule.makespan()
                << "\nSLR        = " << metrics::slr(problem, schedule)
                << "\nspeedup    = " << metrics::speedup(problem, schedule)
                << "\nefficiency = " << metrics::efficiency(problem, schedule)
                << "\n";
      if (cli.get_bool("gantt", false)) {
        std::cout << "\n" << sim::to_gantt(schedule);
      }
      if (cli.has("csv")) {
        std::ofstream out(cli.get("csv", "placements.csv"));
        sim::write_placements_csv(out, schedule, &w.graph);
        std::cout << "wrote " << cli.get("csv", "placements.csv") << "\n";
      }
      if (cli.has("svg")) {
        report::GanttSvgOptions gantt_options;
        gantt_options.graph = &w.graph;
        gantt_options.title = scheduler->name() + " — makespan " +
                              std::to_string(schedule.makespan());
        report::save_gantt_svg(cli.get("svg", "schedule.svg"), schedule,
                               gantt_options);
        std::cout << "wrote " << cli.get("svg", "schedule.svg") << "\n";
      }
      if (tracing) {
        const std::string path = cli.get("trace-out", "trace.json");
        std::ofstream out(path);
        obs::ChromeTraceOptions trace_options;
        trace_options.graph = &w.graph;
        obs::write_chrome_trace(out, &schedule, &recording,
                                &obs::SpanLog::global(), trace_options);
        std::cout << "wrote " << path << "\n";
      }
      if (cli.has("counters-out")) {
        write_counters_file(cli.get("counters-out", "counters.json"));
      }
      if (cli.has("prom-out")) {
        write_prom_file(cli.get("prom-out", "counters.prom"));
      }
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
