// A small command-line tool around the library: generate workload files,
// schedule them with any registered algorithm, and print/dump the result.
//
//   $ ./workflow_tool generate --kind=montage --nodes=50 --out=m.wl
//   $ ./workflow_tool schedule m.wl --scheduler=hdlts --gantt
//   $ ./workflow_tool schedule m.wl --scheduler=heft --csv=placements.csv
//   $ ./workflow_tool batch workloads.txt --schedulers=hdlts,heft --threads=8
//   $ ./workflow_tool list
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <tuple>

#include "hdlts/check/validate.hpp"
#include "hdlts/core/hdlts.hpp"
#include "hdlts/graph/analysis.hpp"
#include "hdlts/io/workload_io.hpp"
#include "hdlts/metrics/metrics.hpp"
#include "hdlts/obs/export.hpp"
#include "hdlts/obs/prometheus.hpp"
#include "hdlts/report/gantt_svg.hpp"
#include "hdlts/sim/gantt.hpp"
#include "hdlts/svc/batch_engine.hpp"
#include "hdlts/util/cli.hpp"
#include "hdlts/util/json.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/gauss.hpp"
#include "hdlts/workload/md.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace {

using namespace hdlts;

int usage() {
  std::cout <<
      "usage:\n"
      "  workflow_tool list\n"
      "  workflow_tool generate --kind=random|fft|montage|md|gauss\n"
      "      [--tasks=N --points=M --nodes=N --matrix=M]\n"
      "      [--cpus=P --ccr=X --beta=X --wdag=X --seed=S] --out=FILE\n"
      "  workflow_tool schedule FILE [--scheduler=hdlts] [--gantt]\n"
      "      [--csv=FILE] [--svg=FILE] [--trace-out=FILE]\n"
      "      [--counters-out=FILE] [--prom-out=FILE]\n"
      "  workflow_tool profile FILE\n"
      "  workflow_tool compare FILE [--schedulers=a,b,c]\n"
      "      [--trace-out=FILE] [--counters-out=FILE] [--prom-out=FILE]\n"
      "  workflow_tool batch WORKLOADS.txt [--schedulers=a,b,c]\n"
      "      [--threads=N] [--queue-cap=N] [--out=FILE.jsonl] [--check]\n"
      "      [--trace-out=FILE] [--counters-out=FILE] [--prom-out=FILE]\n"
      "  workflow_tool online FILE [--fail=proc@frac ...] [--validate]\n"
      "      [--legacy]\n"
      "  workflow_tool stream FILE [FILE ...] [--arrivals=t1,t2,...]\n"
      "      [--policy=pv|fifo] [--validate] [--legacy]\n";
  return 2;
}

/// Parses a --fail spec "proc@frac"; frac scales the clean makespan.
core::ProcFailure parse_fail_spec(const std::string& spec,
                                  double clean_makespan) {
  const auto at = spec.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= spec.size()) {
    throw InvalidArgument("--fail expects proc@frac, got '" + spec + "'");
  }
  try {
    const auto proc =
        static_cast<platform::ProcId>(std::stoul(spec.substr(0, at)));
    const double frac = std::stod(spec.substr(at + 1));
    return {proc, clean_makespan * frac};
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("--fail expects proc@frac, got '" + spec + "'");
  }
}

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> names;
  std::istringstream ls(csv);
  std::string token;
  while (std::getline(ls, token, ',')) {
    if (!token.empty()) names.push_back(token);
  }
  return names;
}

/// Dumps the process-wide metric registry as JSON ({"counters":..,...}).
void write_counters_file(const std::string& path) {
  std::ofstream out(path);
  obs::write_counters_json(out, obs::MetricRegistry::global());
  out << "\n";
  std::cout << "wrote " << path << "\n";
}

/// Dumps the registry in the Prometheus text exposition format.
void write_prom_file(const std::string& path) {
  std::ofstream out(path);
  obs::prometheus_render(obs::MetricRegistry::global(), out);
  std::cout << "wrote " << path << "\n";
}

sim::Workload generate(const util::Cli& cli) {
  workload::CostParams costs;
  costs.num_procs = static_cast<std::size_t>(cli.get_int("cpus", 4));
  costs.ccr = cli.get_double("ccr", 1.0);
  costs.beta = cli.get_double("beta", 0.8);
  costs.wdag = cli.get_double("wdag", 50.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string kind = cli.get("kind", "random");
  if (kind == "random") {
    workload::RandomDagParams p;
    p.num_tasks = static_cast<std::size_t>(cli.get_int("tasks", 100));
    p.alpha = cli.get_double("alpha", 1.0);
    p.density = static_cast<std::size_t>(cli.get_int("density", 3));
    p.costs = costs;
    return workload::random_workload(p, seed);
  }
  if (kind == "fft") {
    workload::FftParams p;
    p.points = static_cast<std::size_t>(cli.get_int("points", 16));
    p.costs = costs;
    return workload::fft_workload(p, seed);
  }
  if (kind == "montage") {
    workload::MontageParams p;
    p.num_nodes = static_cast<std::size_t>(cli.get_int("nodes", 50));
    p.costs = costs;
    return workload::montage_workload(p, seed);
  }
  if (kind == "md") {
    workload::MdParams p;
    p.costs = costs;
    return workload::md_workload(p, seed);
  }
  if (kind == "gauss") {
    workload::GaussParams p;
    p.matrix_size = static_cast<std::size_t>(cli.get_int("matrix", 8));
    p.costs = costs;
    return workload::gauss_workload(p, seed);
  }
  throw InvalidArgument("unknown workload kind '" + kind + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  try {
    if (cli.positional().empty()) return usage();
    const std::string& command = cli.positional()[0];

    if (command == "list") {
      std::cout << "registered schedulers:\n";
      for (const auto& name : core::default_registry().names()) {
        std::cout << "  " << name << "\n";
      }
      return 0;
    }

    if (command == "generate") {
      const std::string out = cli.get("out", "workflow.wl");
      const sim::Workload w = generate(cli);
      io::save_workload(out, w);
      std::cout << "wrote " << out << " (" << w.graph.num_tasks()
                << " tasks, " << w.graph.num_edges() << " edges, "
                << w.platform.num_procs() << " CPUs)\n";
      return 0;
    }

    if (command == "profile") {
      if (cli.positional().size() < 2) return usage();
      const sim::Workload w = io::load_workload(cli.positional()[1]);
      graph::write_profile(std::cout, graph::profile(w.graph));
      std::cout << "processors       " << w.platform.num_procs() << "\n"
                << "mean exec (W)    ";
      double mean = 0.0;
      for (graph::TaskId v = 0; v < w.graph.num_tasks(); ++v) {
        mean += w.costs.mean(v);
      }
      std::cout << mean / static_cast<double>(w.graph.num_tasks()) << "\n";
      return 0;
    }

    if (command == "compare") {
      if (cli.positional().size() < 2) return usage();
      const sim::Workload w = io::load_workload(cli.positional()[1]);
      const sim::Problem problem(w);
      const auto registry = core::default_registry();
      const std::vector<std::string> names = split_names(
          cli.get("schedulers", "hdlts,heft,pets,cpop,peft,sdbats,dheft"));
      obs::RecordingTrace recording;
      const bool tracing = cli.has("trace-out");
      if (tracing) obs::SpanLog::global().enable();
      util::Table table({"scheduler", "makespan", "SLR", "efficiency"});
      for (const auto& name : names) {
        const auto scheduler = registry.make(name);
        if (tracing) scheduler->set_trace_sink(&recording);
        const sim::Schedule s = scheduler->schedule(problem);
        table.add_row({name, util::fmt(s.makespan(), 2),
                       util::fmt(metrics::slr(problem, s), 3),
                       util::fmt(metrics::efficiency(problem, s), 3)});
      }
      table.write_markdown(std::cout);
      if (tracing) {
        const std::string path = cli.get("trace-out", "trace.json");
        std::ofstream out(path);
        obs::ChromeTraceOptions trace_options;
        trace_options.graph = &w.graph;
        obs::write_chrome_trace(out, nullptr, &recording,
                                &obs::SpanLog::global(), trace_options);
        std::cout << "wrote " << path << "\n";
      }
      if (cli.has("counters-out")) {
        write_counters_file(cli.get("counters-out", "counters.json"));
      }
      if (cli.has("prom-out")) {
        write_prom_file(cli.get("prom-out", "counters.prom"));
      }
      return 0;
    }

    if (command == "batch") {
      // Concurrent batch mode: a file naming one workload per line goes in,
      // one JSON object per (workload, scheduler) comes out (JSONL, sorted
      // by request id then scheduler), scheduled by svc::BatchEngine across
      // --threads workers with a --queue-cap-bounded submission queue.
      if (cli.positional().size() < 2) return usage();
      std::vector<std::string> paths;
      {
        std::ifstream list(cli.positional()[1]);
        if (!list) {
          throw InvalidArgument("cannot open workload list '" +
                                cli.positional()[1] + "'");
        }
        std::string line;
        while (std::getline(list, line)) {
          const auto start = line.find_first_not_of(" \t\r");
          if (start == std::string::npos || line[start] == '#') continue;
          const auto stop = line.find_last_not_of(" \t\r");
          paths.push_back(line.substr(start, stop - start + 1));
        }
      }
      if (paths.empty()) {
        throw InvalidArgument("workload list '" + cli.positional()[1] +
                              "' names no workload files");
      }
      std::vector<sim::Workload> workloads;
      workloads.reserve(paths.size());
      for (const auto& path : paths) {
        workloads.push_back(io::load_workload(path));
      }
      std::vector<sim::Problem> problems;
      problems.reserve(workloads.size());
      for (const auto& w : workloads) problems.emplace_back(w);

      const auto registry = core::default_registry();
      const std::vector<std::string> names =
          split_names(cli.get("schedulers", "hdlts,heft,cpop"));

      obs::RecordingTrace recording;
      const bool tracing = cli.has("trace-out");
      if (tracing) obs::SpanLog::global().enable();

      struct Row {
        std::uint64_t id = 0;
        std::size_t scheduler_index = 0;
        std::string scheduler;
        bool ok = false;
        std::string error;
        double makespan = 0.0, slr = 0.0, speedup = 0.0, efficiency = 0.0;
      };
      std::vector<Row> rows;
      std::mutex rows_mu;
      auto on_result = [&](const svc::BatchResult& r) {
        Row row;
        row.id = r.id;
        row.scheduler_index = r.scheduler_index;
        row.scheduler = std::string(r.scheduler);
        row.ok = r.ok;
        row.error = std::string(r.error);
        if (r.ok) {
          row.makespan = r.makespan;
          row.slr = metrics::slr(*r.problem, *r.schedule);
          row.speedup = metrics::speedup(*r.problem, *r.schedule);
          row.efficiency = metrics::efficiency(*r.problem, *r.schedule);
        }
        std::lock_guard lock(rows_mu);
        rows.push_back(std::move(row));
      };

      svc::BatchEngineOptions engine_options;
      engine_options.threads =
          static_cast<std::size_t>(cli.get_int("threads", 0));
      engine_options.queue_capacity =
          static_cast<std::size_t>(cli.get_int("queue-cap", 256));
      engine_options.check_schedules = cli.get_bool("check", false);
      if (tracing) engine_options.trace_sink = &recording;

      const auto t0 = std::chrono::steady_clock::now();
      svc::BatchEngine engine(registry, on_result, engine_options);
      svc::BatchRequest request;
      request.schedulers = names;
      for (std::size_t i = 0; i < problems.size(); ++i) {
        request.id = i;
        request.problem = &problems[i];
        engine.submit(request);  // bounded queue: blocks, never drops
      }
      engine.shutdown(svc::BatchEngine::Drain::kDrain);
      const auto t1 = std::chrono::steady_clock::now();
      const double wall_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();

      std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        return std::tie(a.id, a.scheduler_index) <
               std::tie(b.id, b.scheduler_index);
      });
      const std::string out_path = cli.get("out", "-");
      std::ofstream out_file;
      if (out_path != "-") {
        out_file.open(out_path);
        if (!out_file) {
          throw InvalidArgument("cannot write '" + out_path + "'");
        }
      }
      std::ostream& out = out_path == "-" ? std::cout : out_file;
      for (const Row& row : rows) {
        out << "{\"id\": " << row.id << ", \"workload\": \""
            << util::json_escape(paths[row.id]) << "\", \"scheduler\": \""
            << util::json_escape(row.scheduler) << "\", \"ok\": "
            << (row.ok ? "true" : "false");
        if (row.ok) {
          out << ", \"makespan\": " << util::json_number(row.makespan)
              << ", \"slr\": " << util::json_number(row.slr)
              << ", \"speedup\": " << util::json_number(row.speedup)
              << ", \"efficiency\": " << util::json_number(row.efficiency);
        } else {
          out << ", \"error\": \"" << util::json_escape(row.error) << "\"";
        }
        out << "}\n";
      }

      const auto stats = engine.stats();
      std::cerr << "batch: " << stats.completed << "/" << stats.submitted
                << " requests (" << rows.size() << " results) on "
                << engine.threads() << " threads in " << util::fmt(wall_ms, 1)
                << " ms ("
                << util::fmt(1000.0 * static_cast<double>(stats.completed) /
                                 wall_ms,
                             1)
                << " req/s), queue high-water " << stats.queue_high_water
                << ", failures " << stats.sched_failures << "\n";
      if (out_path != "-") std::cout << "wrote " << out_path << "\n";
      if (tracing) {
        const std::string path = cli.get("trace-out", "trace.json");
        std::ofstream trace_out(path);
        obs::write_chrome_trace(trace_out, nullptr, &recording,
                                &obs::SpanLog::global(), {});
        std::cout << "wrote " << path << "\n";
      }
      if (cli.has("counters-out")) {
        write_counters_file(cli.get("counters-out", "counters.json"));
      }
      if (cli.has("prom-out")) {
        write_prom_file(cli.get("prom-out", "counters.prom"));
      }
      return stats.sched_failures == 0 ? 0 : 1;
    }

    if (command == "online") {
      // Failure-injected online run of one workload; --validate replays the
      // result through check::OnlineValidator (the dynamic oracle described
      // in docs/TESTING.md).
      if (cli.positional().size() < 2) return usage();
      const sim::Workload w = io::load_workload(cli.positional()[1]);
      const double clean =
          core::Hdlts().schedule(sim::Problem(w)).makespan();
      std::vector<core::ProcFailure> fails;
      for (const std::string& spec : cli.get_all("fail")) {
        fails.push_back(parse_fail_spec(spec, clean));
      }
      // --legacy runs the reference implementation instead of the compiled
      // path (they are bit-identical; the flag exists for differential
      // smokes and triage).
      const core::OnlineResult r =
          cli.get_bool("legacy", false) ? core::run_online_legacy(w, fails)
                                        : core::run_online(w, fails);
      std::cout << "clean makespan  = " << clean
                << "\nonline makespan = " << r.makespan
                << "\ncompleted       = " << (r.completed ? "yes" : "no")
                << "\nlost executions = " << r.lost_executions << "\n";
      if (cli.get_bool("validate", false)) {
        const check::OnlineValidator validator;
        const auto violations = validator.validate(w, fails, r);
        if (!violations.empty()) {
          std::cerr << "INVALID online result: " << violations.front()
                    << "\n";
          return 1;
        }
        std::cout << "validation      = " << r.executions.size()
                  << " executions replayed, all invariants hold\n";
      }
      return r.completed ? 0 : 1;
    }

    if (command == "stream") {
      // Multi-workflow stream run; arrival times come from --arrivals (CSV,
      // padded with the last gap) and default to 20 time units apart.
      if (cli.positional().size() < 2) return usage();
      std::vector<core::StreamArrival> arrivals;
      const std::vector<std::string> times =
          split_names(cli.get("arrivals", ""));
      for (std::size_t i = 1; i < cli.positional().size(); ++i) {
        const std::size_t w = i - 1;
        const double arrival = w < times.size()
                                   ? std::stod(times[w])
                                   : 20.0 * static_cast<double>(w);
        arrivals.push_back(
            {io::load_workload(cli.positional()[i]), arrival});
      }
      core::StreamOptions stream_options;
      const std::string policy = cli.get("policy", "pv");
      if (policy == "fifo") {
        stream_options.policy = core::StreamPolicy::kFifoEft;
      } else if (policy != "pv") {
        throw InvalidArgument("--policy expects pv or fifo, got '" + policy +
                              "'");
      }
      const core::StreamResult r =
          cli.get_bool("legacy", false)
              ? core::run_stream_legacy(arrivals, stream_options)
              : core::run_stream(arrivals, stream_options);
      util::Table table({"workflow", "arrival", "finish", "flow time"});
      for (std::size_t w = 0; w < arrivals.size(); ++w) {
        table.add_row({cli.positional()[w + 1],
                       util::fmt(arrivals[w].arrival, 2),
                       util::fmt(r.finish[w], 2),
                       util::fmt(r.flow_time[w], 2)});
      }
      table.write_markdown(std::cout);
      std::cout << "stream makespan = " << r.makespan << "\n";
      if (cli.get_bool("validate", false)) {
        const check::StreamValidator validator(stream_options);
        const auto violations = validator.validate(arrivals, r);
        if (!violations.empty()) {
          std::cerr << "INVALID stream result: " << violations.front()
                    << "\n";
          return 1;
        }
        std::cout << "validation      = " << r.executions.size()
                  << " executions replayed, all invariants hold\n";
      }
      return 0;
    }

    if (command == "schedule") {
      if (cli.positional().size() < 2) return usage();
      const sim::Workload w = io::load_workload(cli.positional()[1]);
      const sim::Problem problem(w);
      const auto scheduler =
          core::default_registry().make(cli.get("scheduler", "hdlts"));
      obs::RecordingTrace recording;
      const bool tracing = cli.has("trace-out");
      if (tracing) {
        scheduler->set_trace_sink(&recording);
        obs::SpanLog::global().enable();
      }
      const sim::Schedule schedule = scheduler->schedule(problem);
      const auto violations = schedule.validate(problem);
      if (!violations.empty()) {
        std::cerr << "INVALID schedule: " << violations.front() << "\n";
        return 1;
      }
      std::cout << "scheduler  = " << scheduler->name()
                << "\nmakespan   = " << schedule.makespan()
                << "\nSLR        = " << metrics::slr(problem, schedule)
                << "\nspeedup    = " << metrics::speedup(problem, schedule)
                << "\nefficiency = " << metrics::efficiency(problem, schedule)
                << "\n";
      if (cli.get_bool("gantt", false)) {
        std::cout << "\n" << sim::to_gantt(schedule);
      }
      if (cli.has("csv")) {
        std::ofstream out(cli.get("csv", "placements.csv"));
        sim::write_placements_csv(out, schedule, &w.graph);
        std::cout << "wrote " << cli.get("csv", "placements.csv") << "\n";
      }
      if (cli.has("svg")) {
        report::GanttSvgOptions gantt_options;
        gantt_options.graph = &w.graph;
        gantt_options.title = scheduler->name() + " — makespan " +
                              std::to_string(schedule.makespan());
        report::save_gantt_svg(cli.get("svg", "schedule.svg"), schedule,
                               gantt_options);
        std::cout << "wrote " << cli.get("svg", "schedule.svg") << "\n";
      }
      if (tracing) {
        const std::string path = cli.get("trace-out", "trace.json");
        std::ofstream out(path);
        obs::ChromeTraceOptions trace_options;
        trace_options.graph = &w.graph;
        obs::write_chrome_trace(out, &schedule, &recording,
                                &obs::SpanLog::global(), trace_options);
        std::cout << "wrote " << path << "\n";
      }
      if (cli.has("counters-out")) {
        write_counters_file(cli.get("counters-out", "counters.json"));
      }
      if (cli.has("prom-out")) {
        write_prom_file(cli.get("prom-out", "counters.prom"));
      }
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
