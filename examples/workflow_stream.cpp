// Dynamic workflow streams (paper §VI): workflows arriving over time on a
// shared heterogeneous platform, scheduled online with the HDLTS penalty
// value vs a FIFO baseline.
//
//   $ ./workflow_stream --workflows=5 --gap=100 --cpus=4
//   $ ./workflow_stream --trace-out=stream.json   # Chrome trace of the PV run
#include <fstream>
#include <iostream>

#include "hdlts/core/stream.hpp"
#include "hdlts/obs/export.hpp"
#include "hdlts/obs/trace.hpp"
#include "hdlts/util/cli.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/random_dag.hpp"

int main(int argc, char** argv) {
  using namespace hdlts;
  const util::Cli cli(argc, argv);
  const auto workflows =
      static_cast<std::size_t>(cli.get_int("workflows", 5));
  const double gap = cli.get_double("gap", 100.0);
  const auto cpus = static_cast<std::size_t>(cli.get_int("cpus", 4));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  std::vector<core::StreamArrival> stream;
  for (std::size_t w = 0; w < workflows; ++w) {
    workload::RandomDagParams p;
    p.num_tasks = 30 + 10 * (w % 3);  // mixed sizes
    p.costs.num_procs = cpus;
    p.costs.ccr = 2.0;
    stream.push_back({workload::random_workload(p, util::derive_seed(seed, w)),
                      gap * static_cast<double>(w)});
  }

  core::StreamOptions pv;
  core::StreamOptions fifo;
  fifo.policy = core::StreamPolicy::kFifoEft;
  obs::RecordingTrace recording;
  const bool tracing = cli.has("trace-out");
  const core::StreamResult a =
      core::run_stream(stream, pv, tracing ? &recording : nullptr);
  const core::StreamResult b = core::run_stream(stream, fifo);

  std::cout << workflows << " workflows arriving every " << gap << " on "
            << cpus << " CPUs:\n\n";
  util::Table table({"workflow", "tasks", "arrival", "PV flow time",
                     "FIFO flow time"});
  for (std::size_t w = 0; w < workflows; ++w) {
    table.add_row({std::to_string(w),
                   std::to_string(stream[w].workload.graph.num_tasks()),
                   util::fmt(stream[w].arrival, 0),
                   util::fmt(a.flow_time[w], 1),
                   util::fmt(b.flow_time[w], 1)});
  }
  table.write_markdown(std::cout);
  std::cout << "\nstream makespan: PV " << util::fmt(a.makespan, 1)
            << " vs FIFO " << util::fmt(b.makespan, 1) << "\n";
  if (tracing) {
    // No sim::Schedule exists for a stream run; the exporter rebuilds the
    // per-processor lanes from the recorded placement events.
    const std::string path = cli.get("trace-out", "stream.json");
    std::ofstream out(path);
    obs::write_chrome_trace(out, nullptr, &recording, nullptr);
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}
