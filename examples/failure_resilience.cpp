// Fault-tolerance demo (paper §IV claim + §VI future work): run HDLTS
// online, kill processors mid-flight, and watch the dynamic ITQ remap the
// remaining work.
//
//   $ ./failure_resilience --tasks=80 --cpus=4 --fail=1@0.4 --fail=2@0.7
//
// Each --fail=proc@frac kills one processor at the given fraction of the
// clean makespan and may be repeated. Without --fail, --failures=N injects a
// default staggered scenario (--fail-proc / --fail-frac tune its first
// failure). Add --validate to replay the run through check::OnlineValidator.
#include <iostream>

#include "hdlts/check/validate.hpp"
#include "hdlts/core/online.hpp"
#include "hdlts/util/cli.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace {

/// Parses "proc@frac" (e.g. "1@0.4"). Throws InvalidArgument on junk.
hdlts::core::ProcFailure parse_fail(const std::string& spec,
                                    double clean_makespan) {
  const auto at = spec.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= spec.size()) {
    throw hdlts::InvalidArgument("--fail expects proc@frac, got '" + spec +
                                 "'");
  }
  try {
    const auto proc =
        static_cast<hdlts::platform::ProcId>(std::stoul(spec.substr(0, at)));
    const double frac = std::stod(spec.substr(at + 1));
    return {proc, clean_makespan * frac};
  } catch (const hdlts::Error&) {
    throw;
  } catch (const std::exception&) {
    throw hdlts::InvalidArgument("--fail expects proc@frac, got '" + spec +
                                 "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hdlts;
  const util::Cli cli(argc, argv);
  workload::RandomDagParams params;
  params.num_tasks = static_cast<std::size_t>(cli.get_int("tasks", 80));
  params.costs.num_procs = static_cast<std::size_t>(cli.get_int("cpus", 4));
  params.costs.ccr = cli.get_double("ccr", 2.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const sim::Workload w = workload::random_workload(params, seed);

  const core::OnlineResult clean = core::run_online(w, {});
  std::cout << "clean run: makespan " << clean.makespan << " on "
            << params.costs.num_procs << " CPUs\n";

  std::vector<core::ProcFailure> fails;
  const auto specs = cli.get_all("fail");
  if (!specs.empty()) {
    for (const std::string& spec : specs) {
      fails.push_back(parse_fail(spec, clean.makespan));
    }
  } else {
    const auto failures = static_cast<std::size_t>(cli.get_int("failures", 1));
    for (std::size_t f = 0; f < failures; ++f) {
      const auto proc = static_cast<platform::ProcId>(
          cli.get_int("fail-proc", static_cast<std::int64_t>(f)));
      const double frac = cli.get_double("fail-frac", 0.4);
      fails.push_back(
          {proc, clean.makespan * frac * (1.0 + 0.3 * static_cast<double>(f))});
    }
  }

  const core::OnlineResult r = core::run_online(w, fails);
  for (const core::ProcFailure& f : fails) {
    std::cout << "injected failure: " << w.platform.proc_name(f.proc)
              << " dies at t = " << f.time << "\n";
  }
  if (cli.get_bool("validate", false)) {
    const check::OnlineValidator validator;
    const auto violations = validator.validate(w, fails, r);
    if (!violations.empty()) {
      std::cout << "VALIDATION FAILED: " << violations.front() << "\n";
      return 1;
    }
    std::cout << "validation: " << r.executions.size()
              << " executions replayed, all invariants hold\n";
  }
  if (!r.completed) {
    std::cout << "workflow could NOT complete (no machines left)\n";
    return 1;
  }
  std::cout << "degraded run: makespan " << r.makespan << " ("
            << util::fmt(r.makespan / clean.makespan, 2) << "x clean), "
            << r.lost_executions << " executions lost and re-run\n\n";

  util::Table table({"t", "task", "proc", "event"});
  std::size_t shown = 0;
  for (const core::OnlineExec& e : r.executions) {
    if (!e.lost && !e.duplicate) continue;  // highlight the interesting rows
    table.add_row({util::fmt(e.start, 1), std::to_string(e.task),
                   w.platform.proc_name(e.proc),
                   e.lost ? "KILLED mid-execution (re-queued)"
                          : "entry duplicate"});
    if (++shown >= 12) break;
  }
  if (table.rows() > 0) {
    std::cout << "notable events:\n";
    table.write_markdown(std::cout);
  }
  return 0;
}
