// Extending the library: write your own scheduler against the
// sched::Scheduler interface and benchmark it against the built-ins.
//
// The example implements "critical-child first": a ready-list scheduler that
// prioritizes the task whose heaviest outgoing edge is largest (a cheap
// proxy for downstream pressure), with min-EFT placement.
//
//   $ ./custom_scheduler
#include <algorithm>
#include <iostream>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/experiment.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace {

using namespace hdlts;

class CriticalChildFirst final : public sched::Scheduler {
 public:
  std::string name() const override { return "critical-child"; }

  sim::Schedule schedule(const sim::Problem& problem) const override {
    const auto& g = problem.graph();
    std::vector<double> pressure(g.num_tasks(), 0.0);
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      for (const graph::Adjacent& c : g.children(v)) {
        pressure[v] = std::max(pressure[v], problem.mean_comm_data(c.data));
      }
    }
    std::vector<std::size_t> pending(g.num_tasks());
    std::vector<graph::TaskId> ready;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      pending[v] = g.in_degree(v);
      if (pending[v] == 0) ready.push_back(v);
    }
    sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
    while (!ready.empty()) {
      const auto it = std::max_element(
          ready.begin(), ready.end(), [&](graph::TaskId a, graph::TaskId b) {
            return pressure[a] < pressure[b];
          });
      const graph::TaskId v = *it;
      ready.erase(it);
      sched::commit(schedule, v,
                    sched::best_eft(problem, schedule, v, /*insertion=*/true));
      for (const graph::Adjacent& c : g.children(v)) {
        if (--pending[c.task] == 0) ready.push_back(c.task);
      }
    }
    return schedule;
  }
};

}  // namespace

int main() {
  // Register the custom scheduler next to the built-ins, then compare.
  sched::Registry registry = core::default_registry();
  registry.add("critical-child",
               [] { return std::make_unique<CriticalChildFirst>(); });

  const metrics::WorkloadFactory factory = [](std::uint64_t seed) {
    workload::RandomDagParams p;
    p.num_tasks = 100;
    p.costs.num_procs = 4;
    p.costs.ccr = 3.0;
    return workload::random_workload(p, seed);
  };
  metrics::CompareOptions options;
  options.repetitions = 20;
  options.check_schedules = true;  // the harness validates our schedules
  const auto rows = metrics::compare_schedulers(
      factory, {"hdlts", "heft", "critical-child", "random"}, registry,
      options);

  std::cout << "Custom scheduler vs built-ins (random, V=100, CCR=3):\n\n";
  util::Table table({"scheduler", "SLR", "efficiency", "wins"});
  for (const auto& r : rows) {
    table.add_row({r.scheduler, util::fmt(r.slr.mean(), 3),
                   util::fmt(r.efficiency.mean(), 3), std::to_string(r.wins)});
  }
  table.write_markdown(std::cout);
  std::cout << "\nA naive one-hop priority beats random order but not the "
               "published heuristics.\n";
  return 0;
}
