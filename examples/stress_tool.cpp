// Config-driven soak harness: streams a mixed static/online scheduling
// workload through svc::BatchEngine for a configured duration while
// obs::RuntimeMonitor samples throughput, latency percentiles, and process
// RSS into a JSONL timeline and judges the run against declarative SLO
// gates. Exit code 0 = every gate passed (or warned), 1 = SLO breach,
// 2 = bad configuration. Modeled on WiredTiger's cppsuite test harness:
// one flat "key=value,key=value" string describes the whole scenario.
//
//   stress_tool --config='duration=30,threads=4,online_fraction=0.4,
//                         slo_min_rps=50,timeline=soak.jsonl,prom=soak.prom'
//
// The full config-key reference lives in docs/OBSERVABILITY.md. Every
// produced schedule is validated (BatchEngineOptions::check_schedules) and
// every online result is replayed through check::OnlineValidator against
// its fault plan, so a soak doubles as a long-running correctness test:
// any violation trips the zero-violation SLO gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hdlts/check/faultplan.hpp"
#include "hdlts/check/validate.hpp"
#include "hdlts/core/hdlts.hpp"
#include "hdlts/core/online.hpp"
#include "hdlts/net/client.hpp"
#include "hdlts/net/protocol.hpp"
#include "hdlts/net/server.hpp"
#include "hdlts/obs/metrics.hpp"
#include "hdlts/obs/monitor.hpp"
#include "hdlts/obs/prometheus.hpp"
#include "hdlts/sim/problem.hpp"
#include "hdlts/svc/batch_engine.hpp"
#include "hdlts/util/cli.hpp"
#include "hdlts/util/config.hpp"
#include "hdlts/util/json.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/forkjoin.hpp"
#include "hdlts/workload/md.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace {

using namespace hdlts;

void usage(std::ostream& os) {
  os << "usage: stress_tool [--config=KEY=V,KEY=V,...] [--config-file=PATH]\n"
        "\n"
        "Runs a config-driven soak of the batch scheduling engine under the\n"
        "runtime monitor and exits nonzero when an SLO gate fails.\n"
        "Key reference: docs/OBSERVABILITY.md (workload mix, SLO gates,\n"
        "output paths). --config-file reads the same key=value string from\n"
        "a file; --config appends to it (later keys must not repeat).\n";
}

/// One pre-generated scheduling problem plus its failure scenarios. The
/// pool is built up front so the submission loop allocates nothing per
/// request beyond what the engine's ring slots recycle.
struct PooledProblem {
  std::unique_ptr<sim::Workload> workload;  // Workload is not default-ctible
  std::unique_ptr<sim::Problem> problem;
  double clean_makespan = 0.0;
  std::vector<check::FaultPlan> plans;
};

/// Weighted choice over the five DAG families.
struct Mix {
  double random = 1.0, fft = 1.0, montage = 1.0, md = 1.0, forkjoin = 1.0;
  double total() const { return random + fft + montage + md + forkjoin; }
};

sim::Workload make_pool_workload(const Mix& mix, util::Rng& rng,
                                 std::size_t tasks_min, std::size_t tasks_max,
                                 std::size_t procs_min, std::size_t procs_max,
                                 std::uint64_t seed, std::string* family) {
  workload::CostParams costs;
  costs.num_procs = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(procs_min),
      static_cast<std::int64_t>(procs_max)));
  const std::size_t tasks = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(tasks_min),
      static_cast<std::int64_t>(tasks_max)));
  double pick = rng.uniform(0.0, mix.total());
  if ((pick -= mix.random) < 0.0) {
    *family = "random";
    workload::RandomDagParams params;
    params.num_tasks = tasks;
    params.costs = costs;
    return workload::random_workload(params, seed);
  }
  if ((pick -= mix.fft) < 0.0) {
    *family = "fft";
    workload::FftParams params;
    // Smallest power of two whose FFT graph reaches the drawn task budget:
    // m points -> 2(m-1)+1 + m*log2(m) tasks.
    params.points = 4;
    while (workload::fft_task_count(params.points * 2) <= tasks &&
           params.points < 64) {
      params.points *= 2;
    }
    params.costs = costs;
    return workload::fft_workload(params, seed);
  }
  if ((pick -= mix.montage) < 0.0) {
    *family = "montage";
    workload::MontageParams params;
    params.num_nodes = std::max<std::size_t>(tasks, 13);
    params.costs = costs;
    return workload::montage_workload(params, seed);
  }
  if ((pick -= mix.md) < 0.0) {
    *family = "md";
    workload::MdParams params;
    params.costs = costs;
    return workload::md_workload(params, seed);
  }
  *family = "forkjoin";
  workload::ForkJoinParams params;
  params.chains = std::max<std::size_t>(2, tasks / 8);
  params.length = 6;
  params.costs = costs;
  return workload::forkjoin_workload(params, seed);
}

/// One pre-computed request scenario for the serve-mode soak: the submit
/// frame a client sends (tenant/id filled in per send) plus the substring
/// every correct response must contain. The expectation is computed by
/// running the same generator spec directly — the daemon path must be
/// bit-identical to the library path, so a single %.17g makespan digit of
/// drift is a soak failure.
struct ServeScenario {
  std::string request_body;  ///< frame minus the leading {"op","id","tenant"
  std::string expect;        ///< required response substring
};

std::string generator_json(const net::GeneratorSpec& spec) {
  std::string out = "\"generator\":{\"kind\":\"" + spec.kind + "\"";
  out += ",\"tasks\":" + std::to_string(spec.tasks);
  out += ",\"cpus\":" + std::to_string(spec.cpus);
  out += "}";
  return out;
}

std::vector<ServeScenario> make_serve_scenarios(
    const sched::Registry& registry, std::size_t count,
    const std::vector<std::string>& schedulers, double online_fraction,
    std::size_t tasks_min, std::size_t tasks_max, std::size_t procs_min,
    std::size_t procs_max, std::uint64_t seed) {
  std::vector<ServeScenario> scenarios;
  scenarios.reserve(count);
  util::Rng rng(util::derive_seed(seed, 10));
  for (std::size_t i = 0; i < count; ++i) {
    net::GeneratorSpec spec;  // random-DAG family, defaults otherwise
    spec.tasks = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(tasks_min),
        static_cast<std::int64_t>(tasks_max)));
    spec.cpus = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(procs_min),
        static_cast<std::int64_t>(procs_max)));
    // Masked to 32 bits: the wire protocol carries seeds as exact JSON
    // integers, so stay well inside the parser's integer range.
    const std::uint64_t wl_seed = util::derive_seed(seed, 11, i) & 0xffffffffu;
    const sim::Workload workload = net::make_workload(spec, wl_seed);

    ServeScenario scenario;
    if (rng.uniform() < online_fraction) {
      // One mid-run failure, timed off the clean HDLTS makespan.
      const sim::Problem problem(workload);
      const double clean = core::Hdlts().schedule(problem).makespan();
      const std::vector<core::ProcFailure> failures{{0, clean * 0.5}};
      const core::ProcFailure& failure = failures.front();
      const core::OnlineResult expected = core::run_online(workload, failures);
      scenario.request_body =
          ",\"kind\":\"online\",\"seed\":" + std::to_string(wl_seed) + "," +
          generator_json(spec) + ",\"failures\":[{\"proc\":0,\"time\":" +
          util::json_number(failure.time) + "}]}";
      scenario.expect =
          "\"completed\":" + std::string(expected.completed ? "true" : "false") +
          ",\"makespan\":" + util::json_number(expected.makespan);
    } else {
      const sim::Problem problem(workload);
      std::vector<std::string> entries;
      for (const std::string& name : schedulers) {
        const double makespan =
            registry.make(name)->schedule(problem).makespan();
        entries.push_back(net::render_static_entry(name, true, makespan, ""));
      }
      std::string expect = "\"results\":[";
      for (std::size_t e = 0; e < entries.size(); ++e) {
        if (e > 0) expect += ',';
        expect += entries[e];
      }
      expect += "]";
      std::string names;
      for (const std::string& name : schedulers) {
        if (!names.empty()) names += ',';
        names += "\"" + name + "\"";
      }
      scenario.request_body =
          ",\"kind\":\"static\",\"seed\":" + std::to_string(wl_seed) + "," +
          generator_json(spec) + ",\"schedulers\":[" + names + "]}";
      scenario.expect = expect;
    }
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.get_bool("help", false)) {
    usage(std::cout);
    return 0;
  }

  // --config-file first, --config appended: the CLI string can override
  // nothing (duplicate keys throw), it can only add.
  std::string text;
  const std::string config_file = cli.get("config-file", "");
  if (!config_file.empty()) {
    std::ifstream in(config_file);
    if (!in) {
      std::cerr << "stress_tool: cannot read config file '" << config_file
                << "'\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
    // A config file may use newlines as separators for readability.
    for (char& c : text) {
      if (c == '\n' || c == '\r') c = ',';
    }
  }
  const std::string config_arg = cli.get("config", "");
  if (!config_arg.empty()) {
    if (!text.empty()) text += ",";
    text += config_arg;
  }

  int exit_code = 0;
  try {
    util::Config config(text);

    const double duration_s = config.get_double("duration", 10.0);
    const std::size_t threads =
        static_cast<std::size_t>(config.get_int("threads", 2));
    const std::size_t queue_cap =
        static_cast<std::size_t>(config.get_int("queue_cap", 256));
    Mix mix;
    mix.random = config.get_double("mix_random", 1.0);
    mix.fft = config.get_double("mix_fft", 1.0);
    mix.montage = config.get_double("mix_montage", 1.0);
    mix.md = config.get_double("mix_md", 1.0);
    mix.forkjoin = config.get_double("mix_forkjoin", 1.0);
    const std::size_t tasks_min =
        static_cast<std::size_t>(config.get_int("tasks_min", 30));
    const std::size_t tasks_max =
        static_cast<std::size_t>(config.get_int("tasks_max", 80));
    const std::size_t procs_min =
        static_cast<std::size_t>(config.get_int("procs_min", 3));
    const std::size_t procs_max =
        static_cast<std::size_t>(config.get_int("procs_max", 8));
    const std::vector<std::string> schedulers =
        config.get_list("schedulers", "heft+cpop+peft");
    const double online_fraction =
        config.get_double("online_fraction", 0.3);
    const double arrival_rate = config.get_double("arrival_rate", 0.0);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(config.get_int("seed", 1));
    const bool check = config.get_bool("check", true);
    const std::size_t num_problems =
        static_cast<std::size_t>(config.get_int("problems", 12));
    const std::int64_t monitor_period_ms =
        config.get_int("monitor_period", 1000);
    const std::string timeline_path = config.get_string("timeline", "");
    const std::string prom_path = config.get_string("prom", "");
    const std::string counters_path = config.get_string("counters", "");
    const double slo_min_rps = config.get_double("slo_min_rps", 0.0);
    const double slo_max_p99_ms = config.get_double("slo_max_p99_ms", 0.0);
    const double slo_max_rss_growth =
        config.get_double("slo_max_rss_growth", 0.0);
    const std::int64_t slo_max_check_violations =
        config.get_int("slo_max_check_violations", 0);
    // serve=1 runs the same soak through the loopback daemon instead of
    // submitting to the engine in-process: an ephemeral net::Server is
    // started and serve_clients worker threads drive it over real sockets,
    // differentially checking every reply against a direct library run.
    const bool serve = config.get_bool("serve", false);
    const int serve_clients =
        static_cast<int>(config.get_int("serve_clients", 2));

    const std::vector<std::string> unused = config.unused_keys();
    if (!unused.empty()) {
      std::cerr << "stress_tool: unknown config key(s):";
      for (const std::string& k : unused) std::cerr << " '" << k << "'";
      std::cerr << " (see docs/OBSERVABILITY.md for the reference)\n";
      return 2;
    }
    if (duration_s <= 0.0 || threads == 0 || queue_cap == 0 ||
        num_problems == 0 || mix.total() <= 0.0 || tasks_min > tasks_max ||
        procs_min < 2 || procs_min > procs_max || monitor_period_ms <= 0 ||
        online_fraction < 0.0 || online_fraction > 1.0 ||
        schedulers.empty()) {
      std::cerr << "stress_tool: config out of range (duration/threads/"
                   "queue_cap/problems positive, procs_min >= 2, "
                   "tasks_min <= tasks_max, online_fraction in [0,1], "
                   ">= 1 scheduler)\n";
      return 2;
    }
    if (serve && serve_clients <= 0) {
      std::cerr << "stress_tool: serve_clients must be positive\n";
      return 2;
    }

    const sched::Registry registry = core::default_registry();

    if (serve) {
      // ---- Serve-mode soak: drive the loopback daemon over real sockets.
      // Each client thread owns one connection and one tenant and submits
      // pre-computed generator requests, checking every reply for the
      // byte-exact substring a direct library run produced. Any drift (or
      // any error frame) counts as a check violation and trips the
      // zero-violation SLO gate.
      obs::MetricRegistry& metrics = obs::MetricRegistry::global();
      obs::Counter& c_completed = metrics.counter("soak.requests_completed");
      obs::Counter& c_ok = metrics.counter("soak.results_ok");
      obs::Counter& c_violations = metrics.counter("soak.check_violations");

      std::cout << "stress_tool: generating " << num_problems
                << " serve scenarios..." << std::endl;
      const std::vector<ServeScenario> scenarios = make_serve_scenarios(
          registry, num_problems, schedulers, online_fraction, tasks_min,
          tasks_max, procs_min, procs_max, seed);

      net::ServerOptions server_options;
      server_options.engine_threads = threads;
      server_options.engine_queue_capacity = queue_cap;
      net::Server server(registry, server_options);
      server.start();
      std::cout << "stress_tool: daemon on 127.0.0.1:" << server.port()
                << ", " << serve_clients << " client(s)" << std::endl;

      std::ofstream timeline_file;
      obs::MonitorOptions monitor_options;
      monitor_options.period = std::chrono::milliseconds(monitor_period_ms);
      if (!timeline_path.empty()) {
        timeline_file.open(timeline_path);
        if (!timeline_file) {
          std::cerr << "stress_tool: cannot write timeline '" << timeline_path
                    << "'\n";
          return 2;
        }
        monitor_options.timeline = &timeline_file;
      }
      if (slo_min_rps > 0.0) {
        monitor_options.gates.push_back(
            {obs::SloKind::kMinCounterRate, "soak.requests_completed",
             slo_min_rps, "min_rps"});
      }
      if (slo_max_p99_ms > 0.0) {
        monitor_options.gates.push_back(
            {obs::SloKind::kMaxHistogramP99, "svc.serve.latency_ms",
             slo_max_p99_ms, "max_p99_ms.serve"});
      }
      if (slo_max_rss_growth > 0.0) {
        monitor_options.gates.push_back({obs::SloKind::kMaxRssGrowth, "",
                                         slo_max_rss_growth,
                                         "max_rss_growth"});
      }
      if (slo_max_check_violations >= 0) {
        monitor_options.gates.push_back(
            {obs::SloKind::kMaxCounterTotal, "soak.check_violations",
             static_cast<double>(slo_max_check_violations),
             "max_check_violations"});
      }
      obs::RuntimeMonitor monitor(std::move(monitor_options));
      monitor.start();

      const auto t0 = std::chrono::steady_clock::now();
      const auto deadline =
          t0 +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(duration_s));
      std::atomic<std::uint64_t> sent{0};
      std::vector<std::thread> clients;
      clients.reserve(static_cast<std::size_t>(serve_clients));
      for (int c = 0; c < serve_clients; ++c) {
        clients.emplace_back([&, c] {
          const std::string tenant = "t" + std::to_string(c);
          try {
            net::Client client(server.port());
            util::Rng rng(util::derive_seed(seed, 20,
                                            static_cast<std::uint64_t>(c)));
            std::uint64_t id = 0;
            while (std::chrono::steady_clock::now() < deadline) {
              const ServeScenario& scenario = scenarios[static_cast<
                  std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(scenarios.size()) - 1))];
              const std::string reply = client.request(
                  "{\"op\":\"submit\",\"id\":" + std::to_string(id) +
                  ",\"tenant\":\"" + tenant + "\"" + scenario.request_body);
              sent.fetch_add(1, std::memory_order_relaxed);
              c_completed.add(1);
              if (reply.find(scenario.expect) != std::string::npos) {
                c_ok.add(1);
              } else {
                c_violations.add(1);
                std::cerr << "stress_tool: " << tenant
                          << " reply mismatch: " << reply.substr(0, 200)
                          << "\n";
              }
              ++id;
            }
          } catch (const std::exception& e) {
            c_violations.add(1);
            std::cerr << "stress_tool: client " << tenant << ": " << e.what()
                      << "\n";
          }
        });
      }
      for (std::thread& t : clients) t.join();
      server.request_drain();
      server.wait();

      const obs::MonitorReport report = monitor.finish();
      const net::ServerStats sstats = server.stats();
      const svc::BatchEngineStats estats = server.engine_stats();
      std::cout << "stress_tool: serve soak: " << sent.load()
                << " sent, accepted " << sstats.accepted << ", completed "
                << sstats.completed << ", rejected " << sstats.rejected
                << ", orphaned " << sstats.orphaned << ", engine "
                << estats.submitted << "/" << estats.completed << "/"
                << estats.cancelled << ", " << c_violations.value()
                << " violations, " << report.samples << " monitor samples\n";
      bool invariants_ok = true;
      if (sstats.accepted != sstats.completed) {
        invariants_ok = false;
        std::cerr << "stress_tool: drain invariant violated: accepted "
                  << sstats.accepted << " != completed " << sstats.completed
                  << "\n";
      }
      if (estats.submitted != estats.completed + estats.cancelled) {
        invariants_ok = false;
        std::cerr << "stress_tool: engine invariant violated: submitted "
                  << estats.submitted << " != completed " << estats.completed
                  << " + cancelled " << estats.cancelled << "\n";
      }
      for (const obs::GateResult& gate : report.gates) {
        std::cout << "  gate " << gate.detail << "\n";
      }
      std::cout << "stress_tool: verdict "
                << obs::verdict_name(report.verdict) << std::endl;

      if (!counters_path.empty()) {
        std::ofstream out(counters_path);
        metrics.write_json(out);
        out << "\n";
      }
      if (!prom_path.empty()) {
        std::ofstream out(prom_path);
        obs::prometheus_render(metrics, out);
      }
      return (report.verdict == obs::Verdict::kFail || !invariants_ok) ? 1
                                                                       : 0;
    }

    // ---- Problem pool: five-family mix, clean makespans, fault plans.
    const sched::SchedulerPtr heft = registry.make("heft");
    std::vector<PooledProblem> pool(num_problems);
    util::Rng pool_rng(util::derive_seed(seed, 0));
    std::cout << "stress_tool: generating " << num_problems
              << " problems..." << std::endl;
    for (std::size_t i = 0; i < num_problems; ++i) {
      PooledProblem& p = pool[i];
      std::string family;
      p.workload = std::make_unique<sim::Workload>(
          make_pool_workload(mix, pool_rng, tasks_min, tasks_max, procs_min,
                             procs_max, util::derive_seed(seed, 1, i),
                             &family));
      p.problem = std::make_unique<sim::Problem>(*p.workload);
      p.clean_makespan = heft->schedule(*p.problem).makespan();
      p.plans = check::make_fault_plans(p.problem->num_procs(),
                                        p.clean_makespan,
                                        util::derive_seed(seed, 2, i));
      std::cout << "  problem " << i << ": " << family << ", "
                << p.problem->num_tasks() << " tasks, "
                << p.problem->num_procs() << " procs, "
                << p.plans.size() << " fault plans" << std::endl;
    }

    // ---- Soak counters (alongside the engine's svc.batch.* metrics).
    obs::MetricRegistry& metrics = obs::MetricRegistry::global();
    obs::Counter& c_completed = metrics.counter("soak.requests_completed");
    obs::Counter& c_ok = metrics.counter("soak.results_ok");
    obs::Counter& c_failed = metrics.counter("soak.results_failed");
    obs::Counter& c_violations = metrics.counter("soak.check_violations");
    obs::Counter& c_online = metrics.counter("soak.online_results");
    obs::Counter& c_static = metrics.counter("soak.static_results");
    // The engine registers this lazily, on the first violation; a clean run
    // would otherwise trip the gate's metric-never-observed guard.
    metrics.counter("svc.batch.check_violations");

    // Result callback (worker threads): count, and replay every online
    // result through the dynamic oracle. Request ids encode
    // problem_index * 1000 + plan_index so the callback can recover the
    // exact run_online inputs from the pool.
    const check::OnlineValidator validator;
    svc::ResultFn on_result = [&](const svc::BatchResult& r) {
      if (r.scheduler_index == 0) c_completed.add(1);
      if (!r.ok) {
        c_failed.add(1);
        // check_schedules failures arrive as !ok with the violation text.
        c_violations.add(1);
        return;
      }
      c_ok.add(1);
      if (r.online == nullptr) {
        c_static.add(1);
        return;
      }
      c_online.add(1);
      const PooledProblem& p = pool[r.id / 1000];
      const check::FaultPlan& plan = p.plans[r.id % 1000];
      if (check) {
        const auto violations =
            validator.validate(*p.workload, plan.failures, *r.online);
        if (!violations.empty()) {
          c_violations.add(violations.size());
          std::cerr << "stress_tool: online violation (problem "
                    << r.id / 1000 << ", " << plan.description
                    << "): " << violations.front() << "\n";
        }
        const bool must_complete =
            plan.expectation == check::PlanExpectation::kMustComplete;
        const bool must_fail =
            plan.expectation == check::PlanExpectation::kMustFail;
        if ((must_complete && !r.online->completed) ||
            (must_fail && r.online->completed)) {
          c_violations.add(1);
          std::cerr << "stress_tool: plan expectation violated ("
                    << plan.description << ")\n";
        }
      }
    };

    svc::BatchEngineOptions engine_options;
    engine_options.threads = threads;
    engine_options.queue_capacity = queue_cap;
    engine_options.check_schedules = check;
    svc::BatchEngine engine(registry, on_result, engine_options);

    // ---- Runtime monitor with the configured SLO gates.
    std::ofstream timeline_file;
    obs::MonitorOptions monitor_options;
    monitor_options.period = std::chrono::milliseconds(monitor_period_ms);
    if (!timeline_path.empty()) {
      timeline_file.open(timeline_path);
      if (!timeline_file) {
        std::cerr << "stress_tool: cannot write timeline '" << timeline_path
                  << "'\n";
        return 2;
      }
      monitor_options.timeline = &timeline_file;
    }
    if (slo_min_rps > 0.0) {
      monitor_options.gates.push_back(
          {obs::SloKind::kMinCounterRate, "soak.requests_completed",
           slo_min_rps, "min_rps"});
    }
    if (slo_max_p99_ms > 0.0) {
      for (const std::string& name : schedulers) {
        monitor_options.gates.push_back(
            {obs::SloKind::kMaxHistogramP99, "svc.batch.latency_ms." + name,
             slo_max_p99_ms, "max_p99_ms." + name});
      }
      if (online_fraction > 0.0) {
        monitor_options.gates.push_back(
            {obs::SloKind::kMaxHistogramP99,
             "svc.batch.latency_ms.hdlts-online", slo_max_p99_ms,
             "max_p99_ms.hdlts-online"});
      }
    }
    if (slo_max_rss_growth > 0.0) {
      monitor_options.gates.push_back({obs::SloKind::kMaxRssGrowth, "",
                                       slo_max_rss_growth,
                                       "max_rss_growth"});
    }
    if (slo_max_check_violations >= 0) {
      monitor_options.gates.push_back(
          {obs::SloKind::kMaxCounterTotal, "soak.check_violations",
           static_cast<double>(slo_max_check_violations),
           "max_check_violations"});
      monitor_options.gates.push_back(
          {obs::SloKind::kMaxCounterTotal, "svc.batch.check_violations",
           static_cast<double>(slo_max_check_violations),
           "max_engine_check_violations"});
    }
    obs::RuntimeMonitor monitor(std::move(monitor_options));
    monitor.start();

    // ---- Submission loop: mixed static/online until the deadline.
    util::Rng submit_rng(util::derive_seed(seed, 3));
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(duration_s));
    auto next_arrival = t0;
    std::uint64_t submitted = 0;
    svc::BatchRequest request;  // reused; the ring slot copies it
    while (std::chrono::steady_clock::now() < deadline) {
      const std::size_t problem_idx = static_cast<std::size_t>(
          submit_rng.uniform_int(0,
                                 static_cast<std::int64_t>(pool.size()) - 1));
      PooledProblem& p = pool[problem_idx];
      request.problem = p.problem.get();
      request.generator = nullptr;
      request.seed = submitted;
      if (submit_rng.uniform() < online_fraction) {
        const std::size_t plan_idx = static_cast<std::size_t>(
            submit_rng.uniform_int(
                0, static_cast<std::int64_t>(p.plans.size()) - 1));
        request.id = problem_idx * 1000 + plan_idx;
        request.job = svc::BatchJob::kOnline;
        request.schedulers.clear();
        request.failures = p.plans[plan_idx].failures;
      } else {
        request.id = problem_idx * 1000;
        request.job = svc::BatchJob::kStatic;
        request.schedulers = schedulers;
        request.failures.clear();
      }
      if (!engine.submit(request,
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             deadline - std::chrono::steady_clock::now()))) {
        break;  // deadline hit while blocked on backpressure
      }
      ++submitted;
      if (arrival_rate > 0.0) {
        next_arrival += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(1.0 / arrival_rate));
        std::this_thread::sleep_until(std::min(next_arrival, deadline));
      }
    }
    engine.wait_idle();
    engine.shutdown();

    // ---- Verdict and outputs.
    const obs::MonitorReport report = monitor.finish();
    const svc::BatchEngineStats stats = engine.stats();
    std::cout << "stress_tool: " << submitted << " submitted, "
              << stats.completed << " completed, " << stats.steals
              << " steals, " << c_violations.value() << " violations, "
              << report.samples << " monitor samples over "
              << report.elapsed_s << "s\n";
    for (const obs::GateResult& gate : report.gates) {
      std::cout << "  gate " << gate.detail << "\n";
    }
    std::cout << "stress_tool: verdict "
              << obs::verdict_name(report.verdict) << std::endl;

    if (!counters_path.empty()) {
      std::ofstream out(counters_path);
      metrics.write_json(out);
      out << "\n";
    }
    if (!prom_path.empty()) {
      std::ofstream out(prom_path);
      obs::prometheus_render(metrics, out);
    }
    exit_code = report.verdict == obs::Verdict::kFail ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "stress_tool: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }
  return exit_code;
}
